package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedIn reports whether t (possibly behind a pointer) is the named type
// pkgSuffix.name, matching the package by import-path suffix so the test
// fixtures' stand-in packages qualify alongside the real ones.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// isBatchType reports whether t is vector.Batch (or *vector.Batch).
func isBatchType(t types.Type) bool { return namedIn(t, "internal/vector", "Batch") }

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isBatchIterType reports whether t structurally satisfies the executor
// interface: NextBatch() (*vector.Batch, error) and Close(). Matching is
// structural rather than by name so the analyzers hold for any operator
// implementation, including the test fixtures'.
func isBatchIterType(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	var haveNext, haveClose bool
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch m.Name() {
		case "NextBatch":
			if sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
				isBatchType(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type()) {
				haveNext = true
			}
		case "Close":
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				haveClose = true
			}
		}
	}
	return haveNext && haveClose
}

// isKernelSig reports whether t is an expression-kernel signature: a
// leading *vector.Batch parameter and ([]T, error) results. The exact shape
// func(*vector.Batch) ([]T, error) is the engine's vecFn; typed kernels
// (exprt.go) add trailing parameters — typed column views, operator
// spellings, scratch buffers — but keep the contract that the returned
// slice may be a closure-owned buffer reused on the next call, so any
// batch-leading signature with a slice first result is treated as a
// kernel. The result element type is left open so fixtures don't need the
// real variant package.
func isKernelSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Params().Len() < 1 || sig.Results().Len() != 2 {
		return false
	}
	if !isBatchType(sig.Params().At(0).Type()) {
		return false
	}
	if _, ok := sig.Results().At(0).Type().Underlying().(*types.Slice); !ok {
		return false
	}
	return isErrorType(sig.Results().At(1).Type())
}

// objOf resolves an identifier to its object, or nil.
func objOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// funcUnit is one analysis scope: a function declaration's or function
// literal's body. Nested literals are separate units.
type funcUnit struct {
	name string
	body *ast.BlockStmt
}

// funcUnits collects every function body in the file, outermost first.
func funcUnits(f *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				units = append(units, funcUnit{name: x.Name.Name, body: x.Body})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{name: "func literal", body: x.Body})
		}
		return true
	})
	return units
}

// declaredWithin reports whether obj's declaration lies inside the body.
// Identifiers used in a unit but declared outside it are captured (closure)
// or package-level state.
func declaredWithin(obj types.Object, body *ast.BlockStmt) bool {
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// receiverObj returns the tracked object a method call's receiver resolves
// to: for sel.X being an identifier, its object.
func receiverObj(info *types.Info, call *ast.CallExpr) (types.Object, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return objOf(info, sel.X), sel.Sel.Name
}

// exprString renders a short expression for messages (identifiers and
// selector chains; anything else becomes "<expr>").
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "<expr>"
}
