package lint

import (
	"go/ast"
)

// LockedBatch forbids holding a sync.Mutex/RWMutex across a NextBatch call.
// NextBatch on a morsel scan blocks on the worker results channel; workers
// in turn report partition accounting through the shared execContext mutex.
// A consumer that calls NextBatch while holding any mutex the workers (or
// another consumer goroutine) need closes that loop into a deadlock under
// backpressure. The analysis is intra-procedural: between recv.Lock() and
// recv.Unlock() on the same receiver expression — or for the rest of the
// function after defer recv.Unlock() — any call to a NextBatch method on a
// value satisfying the executor interface is flagged.
var LockedBatch = &Analyzer{
	Name: "lockedbatch",
	Doc:  "no mutex may be held across a NextBatch call (morsel-pool deadlock under backpressure)",
	Run:  runLockedBatch,
}

func runLockedBatch(pass *Pass) error {
	for _, f := range pass.Files {
		for _, unit := range funcUnits(f) {
			w := &lockWalker{pass: pass, held: map[string]bool{}}
			w.walkStmts(unit.body.List)
		}
	}
	return nil
}

type lockWalker struct {
	pass *Pass
	held map[string]bool // rendered receiver expr -> currently locked
}

// mutexCall classifies recv.Lock/Unlock/RLock/RUnlock calls on sync mutex
// receivers, returning the rendered receiver and whether it locks.
func (w *lockWalker) mutexCall(call *ast.CallExpr) (recv string, lock, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		unlock = true
	default:
		return "", false, false
	}
	tv, ok := w.pass.Info.Types[sel.X]
	if !ok {
		return "", false, false
	}
	if !namedIn(tv.Type, "sync", "Mutex") && !namedIn(tv.Type, "sync", "RWMutex") {
		return "", false, false
	}
	return exprString(sel.X), lock, unlock
}

// checkCalls flags NextBatch calls in e while any mutex is held.
func (w *lockWalker) checkCalls(e ast.Node) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate goroutine/scope; analyzed as its own unit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "NextBatch" {
			return true
		}
		tv, ok := w.pass.Info.Types[sel.X]
		if !ok || !isBatchIterType(tv.Type) {
			return true
		}
		for m := range w.held {
			w.pass.Reportf(call.Pos(), "NextBatch called while holding %s; a blocked morsel pool deadlocks under backpressure — release the lock first", m)
			break
		}
		return true
	})
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if recv, lock, unlock := w.mutexCall(call); recv != "" {
				if lock {
					w.held[recv] = true
				} else if unlock {
					delete(w.held, recv)
				}
				return
			}
		}
		w.checkCalls(x.X)
	case *ast.DeferStmt:
		if recv, _, unlock := w.mutexCall(x.Call); recv != "" && unlock {
			// Deferred unlock: the lock is held for the remainder of the
			// function, so leave it in the held set.
			return
		}
		w.checkCalls(x.Call)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.checkCalls(r)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.checkCalls(r)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.checkCalls(x.Cond)
		w.walkStmts(x.Body.List)
		if x.Else != nil {
			w.walkStmt(x.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(x.List)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.checkCalls(x.Cond)
		w.walkStmts(x.Body.List)
		if x.Post != nil {
			w.walkStmt(x.Post)
		}
	case *ast.RangeStmt:
		w.checkCalls(x.X)
		w.walkStmts(x.Body.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.checkCalls(x.Tag)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkStmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		// The goroutine body is analyzed as its own unit; lock state does
		// not flow into it.
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkCalls(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	}
}
