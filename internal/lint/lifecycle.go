package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resourceSpec parameterizes the lifecycle walker shared by execclose
// (operators must be Closed) and spanend (spans must be Ended, traces
// Finished). A resource is acquired by a call whose result carries the
// resource type; it is discharged by calling its release method, deferring
// it, or transferring ownership (returning it, storing it into a struct or
// slice, or capturing it in a closure — the new owner is then responsible).
type resourceSpec struct {
	analyzer string
	// resourceRelease returns the set of release methods — any one of which
	// discharges the obligation ("Close"; "Finish" or "Abort") — when t is a
	// tracked resource type, or nil otherwise. The first name is the
	// preferred spelling used in messages.
	resourceRelease func(t types.Type) []string
	// argTransfer: passing the resource as a plain call argument hands
	// ownership to the callee (true for operators — wrapping constructors
	// take over their children; false for spans — helpers annotate a span
	// but the creator still ends it).
	argTransfer bool
	// verb for messages: "closed", "ended".
	verb string
}

// trackedVar is one live resource variable inside a function body.
type trackedVar struct {
	obj      types.Object
	name     string
	releases []string
	pos      token.Pos
	errObj   types.Object // error result of the acquiring call, while paired
	done     bool         // released, transferred, or already reported
}

// releasedBy reports whether calling method name discharges the resource.
func (v *trackedVar) releasedBy(name string) bool {
	for _, r := range v.releases {
		if r == name {
			return true
		}
	}
	return false
}

type lifecycleWalker struct {
	pass *Pass
	spec *resourceSpec
	body *ast.BlockStmt
	vars map[types.Object]*trackedVar
}

// runLifecycle applies the spec to every function body in the pass.
func runLifecycle(pass *Pass, spec *resourceSpec) {
	for _, f := range pass.Files {
		for _, unit := range funcUnits(f) {
			w := &lifecycleWalker{pass: pass, spec: spec, body: unit.body, vars: map[types.Object]*trackedVar{}}
			w.walkStmts(unit.body.List, nil)
			for _, v := range w.vars {
				if !v.done {
					pass.Reportf(v.pos, "%s is never %s in %s (add defer %s.%s())",
						v.name, spec.verb, unit.name, v.name, v.releases[0])
				}
			}
		}
	}
}

// acquisition describes one call result that produces a resource.
type acquisition struct {
	resIdx   int // index of the resource in the call's result tuple
	errIdx   int // index of an error result, or -1
	releases []string
}

// acquires inspects a call's result types.
func (w *lifecycleWalker) acquires(call *ast.CallExpr) (acquisition, bool) {
	tv, ok := w.pass.Info.Types[call]
	if !ok {
		return acquisition{}, false
	}
	acq := acquisition{resIdx: -1, errIdx: -1}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			it := t.At(i).Type()
			if rel := w.spec.resourceRelease(it); len(rel) > 0 && acq.resIdx < 0 {
				acq.resIdx, acq.releases = i, rel
			} else if isErrorType(it) {
				acq.errIdx = i
			}
		}
	default:
		if rel := w.spec.resourceRelease(tv.Type); len(rel) > 0 {
			acq.resIdx, acq.releases = 0, rel
		}
	}
	return acq, acq.resIdx >= 0
}

func (w *lifecycleWalker) register(id *ast.Ident, releases []string, errObj types.Object) {
	if id == nil || id.Name == "_" {
		return
	}
	obj := w.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	w.vars[obj] = &trackedVar{obj: obj, name: id.Name, releases: releases, pos: id.Pos(), errObj: errObj}
}

func (w *lifecycleWalker) tracked(e ast.Expr) *trackedVar {
	obj := objOf(w.pass.Info, e)
	if obj == nil {
		return nil
	}
	v := w.vars[obj]
	if v == nil || v.done {
		return nil
	}
	return v
}

// markTransfer discharges e if it is (or contains) a live resource being
// stored, returned, or passed on.
func (w *lifecycleWalker) markTransfer(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if v := w.tracked(x); v != nil {
			v.done = true
		}
	case *ast.ParenExpr:
		w.markTransfer(x.X)
	case *ast.UnaryExpr:
		w.markTransfer(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.markTransfer(kv.Value)
			} else {
				w.markTransfer(el)
			}
		}
	default:
		w.scanValue(e)
	}
}

// scanValue walks an expression for release calls, closure captures and
// (when the spec says so) argument transfers. Bare identifier reads — a nil
// check, a comparison — do not discharge the obligation.
func (w *lifecycleWalker) scanValue(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		if obj, name := receiverObj(w.pass.Info, x); obj != nil {
			if v := w.vars[obj]; v != nil && !v.done && v.releasedBy(name) {
				v.done = true
			}
		}
		if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
			w.scanValue(fun.X)
		}
		for _, arg := range x.Args {
			if w.spec.argTransfer {
				w.markTransfer(arg)
			} else {
				w.scanValue(arg)
			}
		}
	case *ast.FuncLit:
		// The closure takes over any resource it captures (the usual shape is
		// a cleanup func or a worker that releases on its own path).
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := w.tracked(id); v != nil {
					v.done = true
				}
			}
			return true
		})
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.markTransfer(kv.Value)
			} else {
				w.markTransfer(el)
			}
		}
	case *ast.ParenExpr:
		w.scanValue(x.X)
	case *ast.UnaryExpr:
		w.scanValue(x.X)
	case *ast.BinaryExpr:
		w.scanValue(x.X)
		w.scanValue(x.Y)
	case *ast.StarExpr:
		w.scanValue(x.X)
	case *ast.IndexExpr:
		w.scanValue(x.X)
		w.scanValue(x.Index)
	case *ast.SliceExpr:
		w.scanValue(x.X)
	case *ast.TypeAssertExpr:
		w.scanValue(x.X)
	case *ast.SelectorExpr:
		w.scanValue(x.X)
	case *ast.KeyValueExpr:
		w.scanValue(x.Value)
	}
}

// errObjsIn collects error-typed identifiers referenced by a condition;
// returns inside an `if err != nil` block are the acquisition's own failure
// path for resources still paired with that err.
func (w *lifecycleWalker) errObjsIn(cond ast.Expr, exempt map[types.Object]bool) map[types.Object]bool {
	out := exempt
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.Info.ObjectOf(id)
		if obj != nil && isErrorType(obj.Type()) {
			if out == nil || len(exempt) == len(out) { // copy-on-write
				cp := make(map[types.Object]bool, len(exempt)+1)
				for k := range exempt {
					cp[k] = true
				}
				out = cp
			}
			out[obj] = true
		}
		return true
	})
	return out
}

// dissociate breaks the acquisition/err pairing when the error variable is
// reassigned by a later call: from then on `if err != nil { return }` is no
// longer the resource's own failure path and must release it.
func (w *lifecycleWalker) dissociate(lhs []ast.Expr) {
	for _, l := range lhs {
		obj := objOf(w.pass.Info, l)
		if obj == nil {
			continue
		}
		for _, v := range w.vars {
			if v.errObj == obj {
				v.errObj = nil
			}
		}
	}
}

func (w *lifecycleWalker) assign(lhs, rhs []ast.Expr) {
	w.dissociate(lhs)
	if len(rhs) == 1 && len(lhs) >= 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			w.scanValue(call) // arg transfers happen even on acquiring calls
			if acq, ok := w.acquires(call); ok && acq.resIdx < len(lhs) {
				var errObj types.Object
				if acq.errIdx >= 0 && acq.errIdx < len(lhs) {
					errObj = objOf(w.pass.Info, lhs[acq.errIdx])
				}
				if id, ok := lhs[acq.resIdx].(*ast.Ident); ok {
					if id.Name == "_" {
						w.pass.Reportf(call.Pos(), "result of %s must be %s but is discarded",
							exprString(call.Fun), w.spec.verb)
					} else {
						w.register(id, acq.releases, errObj)
					}
				}
				return
			}
			return
		}
	}
	if len(lhs) == len(rhs) {
		for i := range rhs {
			if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
				w.scanValue(call)
				if acq, ok := w.acquires(call); ok && acq.resIdx == 0 {
					if id, ok := lhs[i].(*ast.Ident); ok && id.Name != "_" {
						w.register(id, acq.releases, nil)
						continue
					}
					if id, ok := lhs[i].(*ast.Ident); ok && id.Name == "_" {
						w.pass.Reportf(call.Pos(), "result of %s must be %s but is discarded",
							exprString(call.Fun), w.spec.verb)
						continue
					}
				}
				continue
			}
			w.markTransfer(rhs[i])
		}
		return
	}
	for _, r := range rhs {
		w.markTransfer(r)
	}
}

func (w *lifecycleWalker) walkStmts(stmts []ast.Stmt, exempt map[types.Object]bool) {
	for _, s := range stmts {
		w.walkStmt(s, exempt)
	}
}

func (w *lifecycleWalker) walkStmt(s ast.Stmt, exempt map[types.Object]bool) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.assign(x.Lhs, x.Rhs)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.assign(lhs, vs.Values)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if _, ok := w.acquires(call); ok {
				w.pass.Reportf(call.Pos(), "result of %s must be %s but is discarded",
					exprString(call.Fun), w.spec.verb)
				w.scanValue(call)
				return
			}
		}
		w.scanValue(x.X)
	case *ast.DeferStmt:
		w.scanValue(x.Call)
	case *ast.GoStmt:
		w.scanValue(x.Call)
	case *ast.SendStmt:
		w.markTransfer(x.Value)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.markTransfer(r)
		}
		for _, v := range w.vars {
			if v.done {
				continue
			}
			if v.errObj != nil && exempt[v.errObj] {
				continue // the acquisition's own failure path
			}
			w.pass.Reportf(x.Pos(), "%s may not be %s on this return path (%s.%s() missing; prefer defer)",
				v.name, w.spec.verb, v.name, v.releases[0])
			v.done = true
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, exempt)
		}
		inner := w.errObjsIn(x.Cond, exempt)
		w.scanValue(x.Cond)
		w.walkStmts(x.Body.List, inner)
		if x.Else != nil {
			w.walkStmt(x.Else, inner)
		}
	case *ast.BlockStmt:
		w.walkStmts(x.List, exempt)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, exempt)
		}
		w.scanValue(x.Cond)
		w.walkStmts(x.Body.List, exempt)
		if x.Post != nil {
			w.walkStmt(x.Post, exempt)
		}
	case *ast.RangeStmt:
		w.scanValue(x.X)
		w.walkStmts(x.Body.List, exempt)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, exempt)
		}
		w.scanValue(x.Tag)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanValue(e)
				}
				w.walkStmts(cc.Body, exempt)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, exempt)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, exempt)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, exempt)
				}
				w.walkStmts(cc.Body, exempt)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, exempt)
	}
}
