package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SSA-lite intraprocedural dataflow. The PR 4 analyzers are syntactic: they
// can see one statement at a time but not a value flowing through
// assignments. The analyzers for the governance and typed-storage
// invariants (ctxpoll, memcharge, typedalias, spillclose, nullbits) need
// def-use chains: "this local holds a TypedCol view", "this loop's batch
// reaches a retained field". This file is the shared core: a
// branch-insensitive taint flow with a loop fixpoint (a value assigned late
// in a loop body reaches uses earlier in the body on the next iteration)
// and escape detection — a tracked value leaving its function through a
// struct field, a captured variable, a return, or a closure that itself
// escapes. Function literals are separate analysis units, exactly like the
// rest of the suite; a literal referencing a value tainted in its enclosing
// unit is treated as tainted itself, so returning or storing the closure is
// the escape, while passing it to a call (b.ForEach(fn)) is not.

// escapeKind classifies how a tracked value left its function.
type escapeKind int

const (
	escapeField    escapeKind = iota // stored into a struct field
	escapeCaptured                   // stored into a captured or package-level variable
	escapeReturn                     // returned (directly or inside a closure)
)

func (k escapeKind) String() string {
	switch k {
	case escapeField:
		return "stored in field"
	case escapeCaptured:
		return "stored in captured variable"
	case escapeReturn:
		return "returned"
	}
	return "escaped"
}

// taintSpec configures one run of the dataflow engine.
type taintSpec struct {
	// tracked reports whether t is the guarded view type (or a container of
	// it): parameters and receivers of tracked type enter their function
	// tainted, and an index read whose result is tracked propagates taint
	// from its base.
	tracked func(t types.Type) bool
	// source classifies an expression (typically a call) as freshly
	// producing a tracked value.
	source func(p *Pass, e ast.Expr) bool
	// viewCall reports whether a method call on a tainted receiver returns
	// another view of the same storage (Slice, raw accessors). Calls that
	// are neither sources nor view calls sanitize: Materialize, ValueAt and
	// scalar reads return owned values.
	viewCall func(p *Pass, call *ast.CallExpr) bool
	// allowComposite exempts sanctioned carrier literals (vector.Batch):
	// a tracked value placed in one does not taint the literal.
	allowComposite func(p *Pass, lit *ast.CompositeLit) bool
	// allowFieldStore exempts specific field-store targets.
	allowFieldStore func(p *Pass, sel *ast.SelectorExpr) bool
}

// flowUnit is one dataflow scope: a function body plus its parameter and
// receiver objects.
type flowUnit struct {
	name   string
	body   *ast.BlockStmt
	params []types.Object
}

// flowUnits collects every function body in the file with its parameters,
// outermost first. Nested literals are separate units.
func flowUnits(info *types.Info, f *ast.File) []flowUnit {
	fieldObjs := func(fl *ast.FieldList, out []types.Object) []types.Object {
		if fl == nil {
			return out
		}
		for _, fld := range fl.List {
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
		return out
	}
	var units []flowUnit
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				var params []types.Object
				params = fieldObjs(x.Recv, params)
				params = fieldObjs(x.Type.Params, params)
				units = append(units, flowUnit{name: x.Name.Name, body: x.Body, params: params})
			}
		case *ast.FuncLit:
			units = append(units, flowUnit{
				name:   "func literal",
				body:   x.Body,
				params: fieldObjs(x.Type.Params, nil),
			})
		}
		return true
	})
	return units
}

// runTaintFlow applies the spec to every function body in the pass,
// reporting each escape of a tracked value.
func runTaintFlow(pass *Pass, spec *taintSpec, report func(pos token.Pos, kind escapeKind, what string)) {
	for _, f := range pass.Files {
		for _, unit := range flowUnits(pass.Info, f) {
			w := &flowWalker{pass: pass, spec: spec, unit: unit, taint: map[types.Object]bool{}}
			for _, obj := range unit.params {
				if spec.tracked != nil && obj.Type() != nil && spec.tracked(obj.Type()) {
					w.taint[obj] = true
				}
			}
			// Fixpoint: each pass may taint locals whose assignments appear
			// after their uses (loop-carried flow). Iterate until the taint
			// set is stable, then one reporting pass. The set only grows, so
			// this terminates; the bound is a safety net.
			for i := 0; i < 16; i++ {
				before := len(w.taint)
				w.walkStmts(unit.body.List)
				if len(w.taint) == before {
					break
				}
			}
			w.report = report
			w.walkStmts(unit.body.List)
		}
	}
}

type flowWalker struct {
	pass   *Pass
	spec   *taintSpec
	unit   flowUnit
	taint  map[types.Object]bool
	report func(pos token.Pos, kind escapeKind, what string) // nil during fixpoint passes
}

func (w *flowWalker) reportf(pos token.Pos, kind escapeKind, what string) {
	if w.report != nil {
		w.report(pos, kind, what)
	}
}

// tainted reports whether evaluating e can yield (or contain) a tracked
// view.
func (w *flowWalker) tainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.pass.Info.ObjectOf(x)
		return obj != nil && w.taint[obj]
	case *ast.CallExpr:
		if tv, ok := w.pass.Info.Types[x.Fun]; ok && tv.IsType() {
			return w.tainted(x.Args[0]) // conversion passes the value through
		}
		if w.spec.source != nil && w.spec.source(w.pass, x) {
			return true
		}
		// append(dst, views...) retains the views as elements of dst.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj := w.pass.Info.ObjectOf(id); obj == nil || obj.Parent() == types.Universe {
				for _, a := range x.Args {
					if w.tainted(a) {
						return true
					}
				}
			}
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && w.tainted(sel.X) {
			if w.spec.viewCall != nil && w.spec.viewCall(w.pass, x) {
				return true
			}
		}
		return false
	case *ast.ParenExpr:
		return w.tainted(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.tainted(x.X)
		}
		return false
	case *ast.SliceExpr:
		return w.tainted(x.X) // reslicing shares the backing array
	case *ast.IndexExpr:
		// An element read propagates only when the element itself is a
		// tracked view (b.Typed[i]); scalar element reads are values.
		if tv, ok := w.pass.Info.Types[x]; ok && w.spec.tracked != nil && w.spec.tracked(tv.Type) {
			return w.tainted(x.X)
		}
		return false
	case *ast.CompositeLit:
		if w.spec.allowComposite != nil && w.spec.allowComposite(w.pass, x) {
			return false
		}
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.tainted(v) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		// A literal referencing a tainted enclosing local carries the view:
		// wherever the closure goes, the view goes.
		found := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := w.pass.Info.ObjectOf(id); obj != nil && w.taint[obj] {
					found = true
				}
			}
			return true
		})
		return found
	case *ast.SelectorExpr:
		return w.spec.source != nil && w.spec.source(w.pass, x)
	}
	return false
}

// captured reports whether the identifier's object is declared outside the
// current function body.
func (w *flowWalker) captured(id *ast.Ident) bool {
	obj := w.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	if w.isParam(obj) {
		return false // parameters belong to this unit
	}
	return !declaredWithin(obj, w.unit.body)
}

func (w *flowWalker) isParam(obj types.Object) bool {
	for _, p := range w.unit.params {
		if p == obj {
			return true
		}
	}
	return false
}

func (w *flowWalker) setTaint(id *ast.Ident, t bool) {
	obj := w.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if t {
		w.taint[obj] = true
	}
	// Taint is never cleared: branch-insensitive reaching values must keep
	// a loop-carried taint alive even when a later pass sees a clean
	// reassignment first.
}

func (w *flowWalker) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple call: find which results are tracked by type.
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			t := w.tainted(call)
			if tv, ok := w.pass.Info.Types[call]; ok {
				if tup, ok := tv.Type.(*types.Tuple); ok && t {
					for i := 0; i < tup.Len() && i < len(lhs); i++ {
						w.storeTaint(lhs[i], w.spec.tracked != nil && w.spec.tracked(tup.At(i).Type()))
					}
					return
				}
			}
			for _, l := range lhs {
				w.storeTaint(l, false)
			}
			return
		}
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		w.storeTaint(lhs[i], w.tainted(rhs[i]))
	}
}

// storeTaint applies one lhs <- value store, reporting escapes.
func (w *flowWalker) storeTaint(l ast.Expr, t bool) {
	switch x := l.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if t && w.captured(x) {
			w.reportf(x.Pos(), escapeCaptured, x.Name)
			return
		}
		w.setTaint(x, t)
	case *ast.SelectorExpr:
		if t {
			if w.spec.allowFieldStore != nil && w.spec.allowFieldStore(w.pass, x) {
				return
			}
			w.reportf(x.Pos(), escapeField, exprString(x))
		}
	case *ast.IndexExpr:
		if !t {
			return
		}
		switch base := ast.Unparen(x.X).(type) {
		case *ast.Ident:
			if w.captured(base) {
				w.reportf(x.Pos(), escapeCaptured, base.Name)
				return
			}
			w.setTaint(base, true)
		case *ast.SelectorExpr:
			if w.spec.allowFieldStore != nil && w.spec.allowFieldStore(w.pass, base) {
				return
			}
			w.reportf(x.Pos(), escapeField, exprString(base))
		}
	case *ast.StarExpr:
		if t {
			w.reportf(x.Pos(), escapeCaptured, exprString(x))
		}
	}
}

func (w *flowWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *flowWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.assign(x.Lhs, x.Rhs)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.assign(lhs, vs.Values)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if w.tainted(r) {
				w.reportf(x.Pos(), escapeReturn, exprString(r))
			}
		}
	case *ast.RangeStmt:
		// for i, v := range tracked-slice: the element variable is a view.
		if x.Value != nil && w.tainted(x.X) {
			if tv, ok := w.pass.Info.Types[x.Value]; ok && w.spec.tracked != nil && w.spec.tracked(tv.Type) {
				w.storeTaint(x.Value, true)
			}
		}
		w.walkStmts(x.Body.List)
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.walkStmts(x.Body.List)
		if x.Else != nil {
			w.walkStmt(x.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(x.List)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.walkStmts(x.Body.List)
		if x.Post != nil {
			w.walkStmt(x.Post)
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	}
}

// --- shared def-use helpers ----------------------------------------------------

// funcLitBindings maps every local object bound to a function literal
// (checkCancel := func() bool {...}) anywhere in the file. ctxpoll uses it
// to resolve a loop's poll through a named closure.
func funcLitBindings(info *types.Info, f *ast.File) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
		if !ok {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = lit
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					bind(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					bind(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// inScope reports whether the analyzer applies to this package: its import
// path ends with one of the suffixes, or — the fixture convention — the
// path equals the analyzer's own name (linttest loads each fixture package
// under the fixture directory's name).
func inScope(pass *Pass, suffixes ...string) bool {
	path := pass.Pkg.Path()
	if path == pass.Analyzer.Name {
		return true
	}
	for _, s := range suffixes {
		if path == s || hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func hasPathSuffix(path, suffix string) bool {
	return len(path) > len(suffix) && path[len(path)-len(suffix)-1] == '/' && path[len(path)-len(suffix):] == suffix
}
