package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NullBits keeps null-bitmap bit manipulation inside internal/vector: a
// TypedCol's null words pack validity with a per-view bit offset, and a
// consumer reimplementing the bit math (word>>6, 1<<(bit&63)) silently
// reads the wrong rows the moment a view's offset is non-zero — exactly
// the class of bug the Slice sharing contract invites. Outside the vector
// package, bitmap words are written with vector.SetNullBit, sized with
// vector.NullBitmapWords, and read through TypedCol.Null. Word-granular
// access without shifts (serializing whole []uint64 words to disk) is
// fine and stays unflagged.
var NullBits = &Analyzer{
	Name: "nullbits",
	Doc:  "null-bitmap bits are accessed via the vector helpers, never raw indexing and shifting",
	Run:  runNullBits,
}

func isUint64Slice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func runNullBits(pass *Pass) error {
	if hasPathSuffix(pass.Pkg.Path(), "internal/vector") || pass.Pkg.Path() == "internal/vector" {
		return nil // the vector package implements the helpers
	}
	containsShift := func(e ast.Expr, op token.Token) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			if b, ok := n.(*ast.BinaryExpr); ok && b.Op == op {
				found = true
				return false
			}
			return true
		})
		return found
	}
	isWordIndex := func(e ast.Expr) (*ast.IndexExpr, bool) {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok {
			return nil, false
		}
		tv, ok := pass.Info.Types[ix.X]
		return ix, ok && isUint64Slice(tv.Type)
	}
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, "raw null-bitmap bit access; use TypedCol.Null, vector.SetNullBit and vector.NullBitmapWords instead of hand-rolled shifts")
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IndexExpr:
				// words[bit>>6]: the word-select shift is the bitmap shape.
				if _, ok := isWordIndex(x); ok && containsShift(x.Index, token.SHR) {
					report(x.Pos())
				}
			case *ast.AssignStmt:
				// words[i] |= 1 << (bit & 63) and friends.
				switch x.Tok {
				case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
					if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
						if ix, ok := isWordIndex(x.Lhs[0]); ok && containsShift(x.Rhs[0], token.SHL) {
							report(ix.Pos())
						}
					}
				}
			case *ast.BinaryExpr:
				// words[w] & (1 << b): masked read with a precomputed word index.
				switch x.Op {
				case token.AND, token.OR, token.XOR, token.AND_NOT:
					for _, pair := range [][2]ast.Expr{{x.X, x.Y}, {x.Y, x.X}} {
						if ix, ok := isWordIndex(pair[0]); ok && containsShift(pair[1], token.SHL) {
							report(ix.Pos())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
