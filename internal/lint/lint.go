// Package lint is jsonpark's static-analysis suite: a small
// go/analysis-style framework (built on the standard library's go/ast and
// go/types only — the sandbox has no golang.org/x/tools) plus the analyzers
// that machine-check the executor's load-bearing invariants. PR 2's
// vectorized executor bought its speed with conventions that previously
// lived in comments: expression kernels reuse per-closure output buffers,
// every operator acquired from a constructor must be Closed on all paths,
// obsv spans must be ended, selection vectors are accessed through the
// vector.Batch helpers, and no mutex may be held across a NextBatch call.
// cmd/jsqlint runs every analyzer over the module and is wired into
// `make lint` and CI, turning those conventions into a compile-time gate.
//
// A finding can be suppressed — when the aliasing or retention is
// intentional and documented — with a directive comment on the reported
// line or the line above it:
//
//	cols[i] = vals //jsqlint:ignore kernelalias reason for the aliasing
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full jsqlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		KernelAlias,
		ExecClose,
		SpanEnd,
		SelBounds,
		LockedBatch,
		ErrSink,
		LogKeys,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is the suppression marker: it must be followed by the
// analyzer name and should carry a reason.
const ignoreDirective = "//jsqlint:ignore"

// suppressions maps filename -> line -> analyzer names suppressed there. A
// directive suppresses findings on its own line and on the line below it
// (so it can sit above a long statement).
func suppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	sup := make(map[string]map[int]map[string]bool)
	add := func(pos token.Position, name string) {
		byLine := sup[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			sup[pos.Filename] = byLine
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			if byLine[line] == nil {
				byLine[line] = make(map[string]bool)
			}
			byLine[line][name] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				add(fset.Position(c.Pos()), fields[0])
			}
		}
	}
	return sup
}

// Run applies the analyzers to every loaded package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if names := sup[d.Pos.Filename][d.Pos.Line]; names[d.Analyzer] {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
