// Package lint is jsonpark's static-analysis suite: a small
// go/analysis-style framework (built on the standard library's go/ast and
// go/types only — the sandbox has no golang.org/x/tools) plus the analyzers
// that machine-check the executor's load-bearing invariants. PR 2's
// vectorized executor bought its speed with conventions that previously
// lived in comments: expression kernels reuse per-closure output buffers,
// every operator acquired from a constructor must be Closed on all paths,
// obsv spans must be ended, selection vectors are accessed through the
// vector.Batch helpers, and no mutex may be held across a NextBatch call.
// cmd/jsqlint runs every analyzer over the module and is wired into
// `make lint` and CI, turning those conventions into a compile-time gate.
//
// A finding can be suppressed — when the aliasing or retention is
// intentional and documented — with a directive comment on the reported
// line or the line above it:
//
//	cols[i] = vals //jsqlint:ignore kernelalias reason for the aliasing
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns the full jsqlint suite in reporting order: the seven
// syntactic analyzers from PRs 4 and 7, then the five dataflow-aware
// analyzers guarding the governance and typed-storage invariants.
func All() []*Analyzer {
	return []*Analyzer{
		KernelAlias,
		ExecClose,
		SpanEnd,
		SelBounds,
		LockedBatch,
		ErrSink,
		LogKeys,
		CtxPoll,
		MemCharge,
		TypedAlias,
		SpillClose,
		NullBits,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is the suppression marker: it must be followed by the
// analyzer name and should carry a reason. ignoreFileDirective suppresses
// one analyzer for the whole file (for files that are wall-to-wall
// sanctioned exceptions, e.g. a codec that legitimately owns its bitmap
// words); it too requires the analyzer name and a reason.
const (
	ignoreDirective     = "//jsqlint:ignore"
	ignoreFileDirective = "//jsqlint:ignore-file"
)

// suppressionSet records the per-line and per-file ignore directives of
// one package's files.
type suppressionSet struct {
	byLine map[string]map[int]map[string]bool // filename -> line -> analyzers
	byFile map[string]map[string]bool         // filename -> analyzers
}

func (s *suppressionSet) suppressed(d Diagnostic) bool {
	if s.byFile[d.Pos.Filename][d.Analyzer] {
		return true
	}
	return s.byLine[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// suppressions collects the directives: a line directive suppresses
// findings on its own line and on the line below it (so it can sit above a
// long statement); a file directive suppresses the named analyzer
// everywhere in its file.
func suppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	sup := &suppressionSet{
		byLine: make(map[string]map[int]map[string]bool),
		byFile: make(map[string]map[string]bool),
	}
	addLine := func(pos token.Position, name string) {
		byLine := sup.byLine[pos.Filename]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			sup.byLine[pos.Filename] = byLine
		}
		for _, line := range []int{pos.Line, pos.Line + 1} {
			if byLine[line] == nil {
				byLine[line] = make(map[string]bool)
			}
			byLine[line][name] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// ignore-file first: ignoreDirective is its prefix.
				if strings.HasPrefix(c.Text, ignoreFileDirective) {
					fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreFileDirective))
					if len(fields) == 0 {
						continue
					}
					fn := fset.Position(c.Pos()).Filename
					if sup.byFile[fn] == nil {
						sup.byFile[fn] = make(map[string]bool)
					}
					sup.byFile[fn][fields[0]] = true
					continue
				}
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(fields) == 0 {
					continue
				}
				addLine(fset.Position(c.Pos()), fields[0])
			}
		}
	}
	return sup
}

// AnalyzerStat is one analyzer's aggregate cost and yield over a run.
type AnalyzerStat struct {
	Name     string
	Findings int
	Wall     time.Duration
}

// Run applies the analyzers to every loaded package and returns the
// surviving (non-suppressed) diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithStats(pkgs, analyzers)
	return diags, err
}

// RunWithStats is Run plus per-analyzer wall time and finding counts, in
// the analyzers' given order.
func RunWithStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStat, error) {
	var diags []Diagnostic
	stats := make([]AnalyzerStat, len(analyzers))
	for i, a := range analyzers {
		stats[i].Name = a.Name
	}
	for _, pkg := range pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		for i, a := range analyzers {
			count := 0
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if sup.suppressed(d) {
						return
					}
					count++
					diags = append(diags, d)
				},
			}
			start := time.Now()
			err := a.Run(pass)
			stats[i].Wall += time.Since(start)
			stats[i].Findings += count
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, stats, nil
}
