package linttest

import (
	"fmt"
	"strings"
	"testing"

	"jsonpark/internal/lint"
)

// recorder captures the harness's failure reports instead of failing the
// surrounding test.
type recorder struct {
	fatals []string
	errors []string
}

func (r *recorder) Helper()           {}
func (r *recorder) Fatal(args ...any) { r.fatals = append(r.fatals, fmt.Sprint(args...)) }
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

// TestZeroWantFixtureRejected: a fixture with no want comments must fail
// loudly — otherwise an analyzer that silently stopped firing would keep a
// green golden test forever.
func TestZeroWantFixtureRejected(t *testing.T) {
	rec := &recorder{}
	Run(rec, lint.NullBits, "zerowant")
	if len(rec.fatals) == 0 {
		t.Fatal("harness accepted a fixture with zero want comments")
	}
	if !strings.Contains(rec.fatals[0], "no want comments") {
		t.Fatalf("unexpected failure message: %q", rec.fatals[0])
	}
}
