// A deliberately wantless fixture: the harness must refuse it rather than
// silently pass an analyzer that asserts nothing.
package zerowant

func harmless() int { return 1 }
