// Package linttest is the golden-file harness for the jsqlint analyzers,
// modelled on golang.org/x/tools' analysistest (which the sandbox does not
// have). A fixture is one package under internal/lint/testdata/src/<name>;
// its files import the real jsonpark packages, and every line where the
// analyzer must fire carries a marker comment:
//
//	o.out = vals // want `stored in field`
//
// The backquoted pattern is a regexp matched against the diagnostic
// message. Run fails the test for every unmatched want and every
// diagnostic with no want — so safe idioms and //jsqlint:ignore'd lines in
// a fixture double as guarded false-positive cases: if the analyzer ever
// starts firing on them, the test breaks.
package linttest

import (
	"path/filepath"
	"regexp"
	"strings"

	"jsonpark/internal/lint"
)

// T is the subset of *testing.T the harness reports through; the harness's
// own tests substitute a recorder to assert on failure modes (like a
// fixture with no want comments).
type T interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}

// wantRe extracts the backquoted patterns after a "want " marker.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<fixture> (relative to the test's working
// directory), applies the analyzer, and diffs the diagnostics against the
// fixture's want comments.
func Run(t T, a *lint.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := lint.LoadDir(dir, fixture)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := make(map[string]map[int][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
				}
			}
		}
	}

	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments; a golden fixture must assert at least one finding (add `// want ...` markers)", fixture)
	}

	for _, d := range diags {
		found := false
		for _, e := range wants[d.Pos.Filename][d.Pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no %s diagnostic matching %q", file, line, a.Name, e.re)
				}
			}
		}
	}
}
