package lint

import "go/types"

// ExecClose enforces the executor's lifecycle invariant: every value
// implementing the batch-iterator interface (NextBatch() (*vector.Batch,
// error) + Close()) acquired from a constructor must have Close called on
// all paths — including the error returns between acquiring a child and
// handing it to the parent operator. A leaked morsel scan leaks its worker
// goroutines; under the server's concurrent traffic that is an unbounded
// goroutine leak. Ownership transfers discharge the obligation: returning
// the iterator, storing it into a struct or slice, passing it to another
// call (wrapping constructors adopt their children), or capturing it in a
// closure.
var ExecClose = &Analyzer{
	Name: "execclose",
	Doc:  "operators acquired from constructors must be Closed on all paths, including error returns",
	Run: func(pass *Pass) error {
		runLifecycle(pass, &resourceSpec{
			analyzer: "execclose",
			resourceRelease: func(t types.Type) []string {
				if isBatchIterType(t) {
					return []string{"Close"}
				}
				return nil
			},
			argTransfer: true,
			verb:        "closed",
		})
		return nil
	},
}
