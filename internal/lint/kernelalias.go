package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// KernelAlias enforces the PR 2 buffer-reuse hazard: a compiled expression
// kernel (any value of the vecFn shape, func(*vector.Batch) ([]T, error))
// returns a vector that may alias a buffer owned by the kernel's closure
// and overwritten on its next call. The returned slice therefore must not
// outlive the current call: storing it into a struct field, a captured
// (closure or package-level) variable, or returning it without a copy is
// silent data corruption once the kernel runs again. Reading elements
// (vals[i]) is safe — the hazard is retaining the slice header, not the
// values. Copying detaches: append(dst, vals...) spreads elements and
// copy(dst, vals) duplicates them, so neither propagates taint.
//
// Intentional aliasing (a column-reference kernel returns the stable input
// column) is suppressed with //jsqlint:ignore kernelalias plus a reason.
var KernelAlias = &Analyzer{
	Name: "kernelalias",
	Doc:  "kernel output vectors must not be retained past the kernel's next call",
	Run:  runKernelAlias,
}

func runKernelAlias(pass *Pass) error {
	for _, f := range pass.Files {
		for _, unit := range funcUnits(f) {
			w := &aliasWalker{pass: pass, body: unit.body, taint: map[types.Object]bool{}}
			w.walkStmts(unit.body.List)
		}
	}
	return nil
}

type aliasWalker struct {
	pass  *Pass
	body  *ast.BlockStmt
	taint map[types.Object]bool
}

// isKernelCall reports whether the call invokes a value of the kernel
// signature (the callee's static type is func(*vector.Batch) ([]T, error)).
func (w *aliasWalker) isKernelCall(call *ast.CallExpr) bool {
	tv, ok := w.pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsType() { // conversion, not a call
		return false
	}
	return isKernelSig(tv.Type)
}

// tainted reports whether evaluating e can yield (or contain) a kernel's
// reusable output slice.
func (w *aliasWalker) tainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.pass.Info.ObjectOf(x)
		return obj != nil && w.taint[obj]
	case *ast.CallExpr:
		if w.isKernelCall(x) {
			return true
		}
		// append(dst, vals) retains vals as an element of dst; with ellipsis
		// the elements are copied out, which detaches from the buffer.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj := w.pass.Info.ObjectOf(id); obj == nil || obj.Parent() == types.Universe {
				if len(x.Args) > 0 && w.tainted(x.Args[0]) {
					return true
				}
				if x.Ellipsis == token.NoPos {
					for _, a := range x.Args[1:] {
						if w.tainted(a) {
							return true
						}
					}
				}
			}
		}
		return false
	case *ast.ParenExpr:
		return w.tainted(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.tainted(x.X) // &Batch{Cols: tainted} escapes the buffer
		}
		return false
	case *ast.SliceExpr:
		return w.tainted(x.X) // reslicing shares the backing array
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.tainted(v) {
				return true
			}
		}
		return false
	}
	// Index reads (vals[i]) produce element values, not the slice; any other
	// expression form is considered clean.
	return false
}

// captured reports whether the identifier's object is declared outside the
// current function body (closure capture or package-level state) — storing
// a kernel buffer there retains it across calls.
func (w *aliasWalker) captured(id *ast.Ident) bool {
	obj := w.pass.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return !declaredWithin(obj, w.body)
}

func (w *aliasWalker) setTaint(id *ast.Ident, t bool) {
	obj := w.pass.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	if t {
		w.taint[obj] = true
	} else {
		delete(w.taint, obj)
	}
}

func (w *aliasWalker) assign(lhs, rhs []ast.Expr, pos ast.Node) {
	// Tuple form vals, err := fn(b): only the first result carries the buffer.
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok && w.isKernelCall(call) {
			w.storeTaint(lhs[0], true, pos)
			for _, l := range lhs[1:] {
				if id, ok := l.(*ast.Ident); ok {
					w.setTaint(id, false)
				}
			}
			return
		}
	}
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		w.storeTaint(lhs[i], w.tainted(rhs[i]), pos)
	}
}

// storeTaint applies one lhs <- tainted-value store, reporting retention
// sinks: struct fields, captured variables, and elements of either.
func (w *aliasWalker) storeTaint(l ast.Expr, t bool, pos ast.Node) {
	switch x := l.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if t && w.captured(x) {
			w.pass.Reportf(x.Pos(), "kernel output vector stored in captured variable %s; it is overwritten on the kernel's next call — copy it first", x.Name)
			return
		}
		w.setTaint(x, t)
	case *ast.SelectorExpr:
		if t {
			w.pass.Reportf(x.Pos(), "kernel output vector stored in field %s; it is overwritten on the kernel's next call — copy it first", exprString(x))
		}
	case *ast.IndexExpr:
		if !t {
			return
		}
		switch base := ast.Unparen(x.X).(type) {
		case *ast.Ident:
			if w.captured(base) {
				w.pass.Reportf(x.Pos(), "kernel output vector stored in captured slice %s; it is overwritten on the kernel's next call — copy it first", base.Name)
				return
			}
			w.setTaint(base, true) // local container now holds the buffer
		case *ast.SelectorExpr:
			w.pass.Reportf(x.Pos(), "kernel output vector stored in field %s; it is overwritten on the kernel's next call — copy it first", exprString(base))
		}
	}
}

func (w *aliasWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *aliasWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.assign(x.Lhs, x.Rhs, x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.assign(lhs, vs.Values, x)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			if w.tainted(r) {
				w.pass.Reportf(x.Pos(), "kernel output vector returned without a copy; it is overwritten on the kernel's next call")
				break
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.walkStmts(x.Body.List)
		if x.Else != nil {
			w.walkStmt(x.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(x.List)
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.walkStmts(x.Body.List)
		if x.Post != nil {
			w.walkStmt(x.Post)
		}
	case *ast.RangeStmt:
		w.walkStmts(x.Body.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkStmt(cc.Comm)
				}
				w.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	}
}
