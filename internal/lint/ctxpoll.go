package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the PR 5 cancellation contract in internal/engine and
// internal/storage: any loop that can absorb unbounded input — calling
// NextBatch on a concrete operator or Next on a spill-run reader — must
// poll cancellation on every iteration, or a cancelled query keeps
// scanning, merging, or replaying until the loop drains naturally.
// NextBatch through the batchIter *interface* is exempt: prepare() wraps
// every operator in cancelIter, so the interface call itself is the poll.
// A poll is a call to a method named cancelled/canceled, ctx.Err(),
// receiving from ctx.Done(), or a call to a local closure or
// package-level function whose body polls (the parallel workers'
// checkCancel pattern) — resolved through the dataflow core's def-use
// bindings.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "batch-absorbing loops must poll cancellation every iteration or run behind a cancelIter",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	if !inScope(pass, "internal/engine", "internal/storage") {
		return nil
	}
	pollers := packagePollers(pass)
	for _, f := range pass.Files {
		bindings := funcLitBindings(pass.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.ForStmt:
				body = x.Body
			case *ast.RangeStmt:
				body = x.Body
			default:
				return true
			}
			if absorb := absorbCallIn(pass, body); absorb != "" && !pollsIn(pass, body, bindings, pollers) {
				pass.Reportf(n.Pos(), "loop absorbs batches via %s without polling cancellation; call ctx.cancelled() each iteration or wrap the source in a cancelIter", absorb)
			}
			return true
		})
	}
	return nil
}

// absorbCallIn finds an unbounded-absorption call inside the loop body:
// NextBatch() (*vector.Batch, error) on a concrete (non-interface)
// receiver, or Next() ([]byte, error) — the spill-run reader shape. It
// returns a short description of the first such call, or "".
func absorbCallIn(pass *Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok {
			return true
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok || sig.Results().Len() != 2 || !isErrorType(sig.Results().At(1).Type()) {
			return true
		}
		switch sel.Sel.Name {
		case "NextBatch":
			if !isBatchType(sig.Results().At(0).Type()) {
				return true
			}
			// Interface dispatch means the cancelIter wrap already polls.
			if rtv, ok := pass.Info.Types[sel.X]; ok && rtv.Type != nil {
				if _, isIface := deref(rtv.Type).Underlying().(*types.Interface); isIface {
					return true
				}
			}
			found = exprString(sel.X) + ".NextBatch"
		case "Next":
			res0, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
			if !ok || !types.Identical(res0.Elem(), types.Typ[types.Byte]) {
				return true
			}
			found = exprString(sel.X) + ".Next"
		}
		return true
	})
	return found
}

// pollsIn reports whether the loop body reaches a cancellation poll:
// directly, through a bound closure, or through a package function that
// polls.
func pollsIn(pass *Pass, body *ast.BlockStmt, bindings map[types.Object]*ast.FuncLit, pollers map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isDirectPoll(pass, call) {
			found = true
			return false
		}
		// A call through a local closure binding or a package function whose
		// body polls counts: the parallel workers' checkCancel pattern.
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj := pass.Info.ObjectOf(fun)
			if obj == nil {
				return true
			}
			if pollers[obj] {
				found = true
				return false
			}
			if lit, ok := bindings[obj]; ok && bodyPollsDirect(pass, lit.Body) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if obj := pass.Info.Uses[fun.Sel]; obj != nil && pollers[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isDirectPoll reports whether the call is itself a cancellation poll:
// x.cancelled() / x.canceled(), ctx.Err(), or ctx.Done() (Done only
// appears in receive positions, so the call is the poll).
func isDirectPoll(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	switch sel.Sel.Name {
	case "cancelled", "canceled":
		return true
	case "Err", "Done":
		tv, ok := pass.Info.Types[sel.X]
		return ok && namedIn(tv.Type, "context", "Context")
	}
	return false
}

// bodyPollsDirect reports whether a function body contains a direct poll.
func bodyPollsDirect(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isDirectPoll(pass, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// packagePollers computes, to a fixpoint across the pass's files, the set
// of package-level functions and methods whose bodies poll cancellation —
// directly or by calling another poller.
func packagePollers(pass *Pass) map[types.Object]bool {
	type decl struct {
		obj  types.Object
		body *ast.BlockStmt
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls = append(decls, decl{obj: obj, body: fd.Body})
			}
		}
	}
	pollers := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if pollers[d.obj] {
				continue
			}
			hit := false
			ast.Inspect(d.body, func(n ast.Node) bool {
				if hit {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isDirectPoll(pass, call) {
					hit = true
					return false
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if obj := pass.Info.ObjectOf(fun); obj != nil && pollers[obj] {
						hit = true
						return false
					}
				case *ast.SelectorExpr:
					if obj := pass.Info.Uses[fun.Sel]; obj != nil && pollers[obj] {
						hit = true
						return false
					}
				}
				return true
			})
			if hit {
				pollers[d.obj] = true
				changed = true
			}
		}
	}
	return pollers
}
