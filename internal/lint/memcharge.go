package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MemCharge enforces the PR 6 memory-governance contract in
// internal/engine: operators that retain batch data beyond the absorbing
// loop's iteration must account for it. Three complementary rules:
//
//  1. A loop that pulls batches (NextBatch) and stores batch-derived
//     values into state declared outside the loop — a buffered slice, a
//     struct field — must call charge within the loop. (Retention through
//     helper calls like eval.absorb is out of intraprocedural reach; the
//     assignment form is the shape every buffering operator here uses.)
//  2. A type whose method charges a receiver field (j.mem.charge) must
//     have some method that calls releaseAll on the same field, or the
//     accounting leaks on Close.
//  3. An accounting handle acquired from a call (ctx.opMemFor) must reach
//     releaseAll or be ownership-transferred, on all paths — the
//     execclose lifecycle discipline applied to opMem.
var MemCharge = &Analyzer{
	Name: "memcharge",
	Doc:  "operators retaining batch data must charge opMem and pair every charge with releaseAll",
	Run:  runMemCharge,
}

// isMemLike reports whether t is an operator accounting handle: its method
// set has charge(int64) bool and releaseAll(). Structural matching lets
// fixtures define stand-ins and keeps the query-wide memAccountant (which
// pairs charge with release(n), owned by the engine, not per-operator)
// out of scope.
func isMemLike(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	var haveCharge, haveRelease bool
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch m.Name() {
		case "charge":
			if sig.Params().Len() == 1 && sig.Results().Len() == 1 {
				if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.Bool {
					haveCharge = true
				}
			}
		case "releaseAll":
			if sig.Params().Len() == 0 && sig.Results().Len() == 0 {
				haveRelease = true
			}
		}
	}
	return haveCharge && haveRelease
}

func runMemCharge(pass *Pass) error {
	if !inScope(pass, "internal/engine") {
		return nil
	}
	checkAbsorbLoops(pass)
	checkChargeReleasePairs(pass)
	runLifecycle(pass, &resourceSpec{
		analyzer: "memcharge",
		resourceRelease: func(t types.Type) []string {
			if isMemLike(t) {
				return []string{"releaseAll"}
			}
			return nil
		},
		argTransfer: true,
		verb:        "released",
	})
	return nil
}

// --- rule 1: absorbing loops must charge ---------------------------------------

func checkAbsorbLoops(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch x := n.(type) {
			case *ast.ForStmt:
				body = x.Body
			case *ast.RangeStmt:
				body = x.Body
			default:
				return true
			}
			checkOneAbsorbLoop(pass, body)
			return true
		})
	}
}

// checkOneAbsorbLoop reports the first batch-derived value stored into
// loop-external state when the loop never charges.
func checkOneAbsorbLoop(pass *Pass, body *ast.BlockStmt) {
	derived := batchDerivedObjs(pass, body)
	if len(derived) == 0 {
		return
	}
	if hasChargeCall(pass, body) {
		return
	}
	mentions := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if hit {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && derived[obj] {
					hit = true
				}
			}
			return true
		})
		return hit
	}
	var outer func(e ast.Expr) (string, bool)
	outer = func(e ast.Expr) (string, bool) {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return exprString(x), true // struct field: outlives the loop by definition
		case *ast.Ident:
			obj := pass.Info.ObjectOf(x)
			if obj == nil || x.Name == "_" {
				return "", false
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return "", false
			}
			if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
				return "", false // loop-local
			}
			return x.Name, true
		case *ast.IndexExpr:
			return outer(ast.Unparen(x.X))
		}
		return "", false
	}
	reported := false
	ast.Inspect(body, func(n ast.Node) bool {
		if reported {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			if !mentions(as.Rhs[i]) {
				continue
			}
			if name, isOuter := outer(as.Lhs[i]); isOuter {
				pass.Reportf(as.Pos(), "batch data retained in %s by an absorbing loop that never charges; charge activeRowsBytes per batch (and releaseAll on spill/close)", name)
				reported = true
				return false
			}
		}
		return true
	})
}

// batchDerivedObjs computes the loop body's batch-derived locals: values
// assigned from a NextBatch call, closed transitively over local
// assignments.
func batchDerivedObjs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	isNextBatch := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "NextBatch" {
			return false
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok {
			return false
		}
		sig, ok := tv.Type.(*types.Signature)
		return ok && sig.Results().Len() == 2 && isBatchType(sig.Results().At(0).Type())
	}
	mentions := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if hit {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.ObjectOf(id); obj != nil && derived[obj] {
					hit = true
				}
			}
			return true
		})
		return hit
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			add := func(l ast.Expr) {
				id, ok := l.(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				if obj := pass.Info.ObjectOf(id); obj != nil && !derived[obj] {
					// Only loop-local derivations chain; an outer target is the
					// retention rule 1 looks for, not a derivation step.
					if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
						derived[obj] = true
						changed = true
					}
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) >= 1 && isNextBatch(as.Rhs[0]) {
				add(as.Lhs[0])
				return true
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					if isNextBatch(as.Rhs[i]) || mentions(as.Rhs[i]) {
						add(as.Lhs[i])
					}
				}
			}
			return true
		})
	}
	return derived
}

// hasChargeCall reports whether the loop body calls a charge method.
func hasChargeCall(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "charge" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- rule 2: every charged field has a releasing method ------------------------

func checkChargeReleasePairs(pass *Pass) {
	type fieldKey struct {
		recv  types.Object // the receiver's named-type object
		field string
	}
	charges := make(map[fieldKey]token.Pos)
	releases := make(map[fieldKey]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recvObj := pass.Info.Defs[fd.Recv.List[0].Names[0]]
			if recvObj == nil {
				continue
			}
			named, ok := deref(recvObj.Type()).(*types.Named)
			if !ok {
				continue
			}
			typeObj := types.Object(named.Obj())
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				field, ok := sel.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := field.X.(*ast.Ident); !ok || pass.Info.ObjectOf(id) != recvObj {
					return true
				}
				key := fieldKey{recv: typeObj, field: field.Sel.Name}
				switch sel.Sel.Name {
				case "charge":
					if _, seen := charges[key]; !seen {
						charges[key] = call.Pos()
					}
				case "releaseAll":
					releases[key] = true
				}
				return true
			})
		}
	}
	for key, pos := range charges {
		if !releases[key] {
			pass.Reportf(pos, "%s.%s is charged but no %s method calls %s.releaseAll(); the accounting leaks on Close",
				key.recv.Name(), key.field, key.recv.Name(), key.field)
		}
	}
}
