package lint

import (
	"go/ast"
	"go/types"
)

// ErrSink flags silently discarded error returns from calls whose failure
// is load-bearing: Close (data may be lost on flush), Flush, Sync, Encode
// (a broken pipe otherwise passes as success), and flag-set Parse. The
// check is deny-list based rather than blanket errcheck: only statement-
// level calls (ExprStmt and defer) with an unconsumed error result are
// flagged, and only for the listed method names. Explicit discards
// (`_ = f.Close()`) acknowledge the error and are exempt, as are receivers
// whose method cannot fail by contract (strings.Builder, bytes.Buffer).
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "Close/Flush/Sync/Encode/Parse errors must be checked or explicitly discarded",
	Run:  runErrSink,
}

// errSinkMethods are the method names whose error results must not be
// dropped at statement level.
var errSinkMethods = map[string]bool{
	"Close":  true,
	"Flush":  true,
	"Sync":   true,
	"Encode": true,
	"Parse":  true,
}

// errSinkExemptRecv lists receiver types whose listed methods are
// documented to always return nil.
func errSinkExemptRecv(t types.Type) bool {
	return namedIn(t, "strings", "Builder") || namedIn(t, "bytes", "Buffer")
}

func runErrSink(pass *Pass) error {
	check := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !errSinkMethods[sel.Sel.Name] {
			return
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || tv.Type == nil || tv.IsType() {
			return
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		// Only calls whose sole result is an error (or whose last result is
		// an error and the statement drops the whole tuple) are sinks.
		res := sig.Results()
		if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
			return
		}
		if rtv, ok := pass.Info.Types[sel.X]; ok && errSinkExemptRecv(rtv.Type) {
			return
		}
		how := "check its error"
		if deferred {
			how = "capture and check its error in a wrapper or named return"
		}
		pass.Reportf(call.Pos(), "error from %s.%s discarded; %s or assign to _ explicitly", exprString(sel.X), sel.Sel.Name, how)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.DeferStmt:
				check(x.Call, true)
			case *ast.GoStmt:
				check(x.Call, false)
			}
			return true
		})
	}
	return nil
}
