package lint

// White-box tests of the lint framework itself: the suppression
// directives, deterministic output ordering, the per-analyzer stats, and
// the dataflow core's escape detection — exercised on in-memory sources so
// the cases stay minimal and self-describing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// checkSources type-checks an import-free package given as filename->source.
func checkSources(t *testing.T, filenames []string, src map[string]string) *Package {
	t.Helper()
	bodies := make(map[string][]byte, len(src))
	for fn, s := range src {
		bodies[fn] = []byte(s)
	}
	pkg, err := typeCheck(token.NewFileSet(), "p", filenames, bodies, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// reportCalls returns an analyzer that flags every call to a function
// literally named sink — a minimal stand-in with fully predictable
// positions.
func reportCalls(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "sink" {
							pass.Reportf(call.Pos(), "call to sink")
						}
					}
					return true
				})
			}
			return nil
		},
	}
}

func TestSuppressionEdgeCases(t *testing.T) {
	src := `package p

func sink() {}

func sameLine() {
	sink() //jsqlint:ignore fake on the reported line
}

func lineAbove() {
	//jsqlint:ignore fake on the line above
	sink()
}

func multiLineStmt() {
	//jsqlint:ignore fake above a statement split across lines
	sink(
	)
}

func wrongName() {
	//jsqlint:ignore otheranalyzer the name does not match
	sink()
}

func nameless() {
	//jsqlint:ignore
	sink()
}
`
	pkg := checkSources(t, []string{"p.go"}, map[string]string{"p.go": src})
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportCalls("fake")})
	if err != nil {
		t.Fatal(err)
	}
	// Only the mismatched-name and nameless directives leave their findings
	// alive; same-line, line-above and multi-line statements are suppressed.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (wrongName, nameless): %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 22 || diags[1].Pos.Line != 27 {
		t.Errorf("surviving findings at lines %d and %d, want 22 (wrongName) and 27 (nameless)",
			diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

func TestIgnoreFileDirective(t *testing.T) {
	muted := `//jsqlint:ignore-file fake this whole file is a sanctioned exception
package p

func sink() {}

func one() { sink() }

func two() { sink() }
`
	loud := `package p

func other() { sink() }
`
	pkg := checkSources(t, []string{"muted.go", "loud.go"},
		map[string]string{"muted.go": muted, "loud.go": loud})
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportCalls("fake")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Pos.Filename != "loud.go" {
		t.Fatalf("got %v, want exactly one finding in loud.go", diags)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	// Two files fed out of name order, two analyzers firing on the same
	// lines: the output must sort by file, line, column, analyzer — and be
	// byte-identical across runs.
	srcB := `package p

func sink() {}

func fromB() { sink(); sink() }
`
	srcA := `package p

func fromA() { sink() }
`
	pkg := checkSources(t, []string{"b.go", "a.go"},
		map[string]string{"b.go": srcB, "a.go": srcA})
	analyzers := []*Analyzer{reportCalls("zfake"), reportCalls("afake")}
	first, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 6 {
		t.Fatalf("got %d diagnostics, want 6", len(first))
	}
	if first[0].Pos.Filename != "a.go" || first[len(first)-1].Pos.Filename != "b.go" {
		t.Errorf("findings not sorted by file: first %s, last %s",
			first[0].Pos.Filename, first[len(first)-1].Pos.Filename)
	}
	if first[0].Analyzer != "afake" || first[1].Analyzer != "zfake" {
		t.Errorf("same-position findings not sorted by analyzer: %s before %s",
			first[0].Analyzer, first[1].Analyzer)
	}
	for i := 0; i < 5; i++ {
		again, err := Run([]*Package{pkg}, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d produced a different ordering:\n%v\nvs\n%v", i, first, again)
		}
	}
}

func TestRunWithStats(t *testing.T) {
	src := `package p

func sink() {}

func f() {
	sink()
	//jsqlint:ignore fake suppressed findings must not count
	sink()
}
`
	pkg := checkSources(t, []string{"p.go"}, map[string]string{"p.go": src})
	diags, stats, err := RunWithStats([]*Package{pkg}, []*Analyzer{reportCalls("fake")})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	if len(stats) != 1 || stats[0].Name != "fake" || stats[0].Findings != 1 {
		t.Fatalf("stats = %+v, want one entry for fake with 1 finding", stats)
	}
	if stats[0].Wall < 0 {
		t.Fatalf("negative wall time: %v", stats[0].Wall)
	}
}

// TestTaintFlowEscapes drives the dataflow core directly: a local view
// type, a source function, and the three escape kinds — plus the
// loop-carried case only the fixpoint catches and the closure-argument
// case that must stay clean.
func TestTaintFlowEscapes(t *testing.T) {
	src := `package p

type view struct{ xs []int }

func newView() *view { return &view{} }

type holder struct{ v *view }

func storesField(h *holder) {
	v := newView()
	h.v = v
}

func returns() *view {
	v := newView()
	return v
}

func returnsClosure() func() *view {
	v := newView()
	return func() *view { return v }
}

func loopCarried(h *holder) {
	var v *view
	for i := 0; i < 2; i++ {
		h.v = v
		v = newView()
	}
}

func each(f func()) { f() }

func closureArg() int {
	v := newView()
	n := 0
	each(func() { n = len(v.xs) })
	return n
}

func clean() int {
	v := newView()
	return len(v.xs)
}
`
	pkg := checkSources(t, []string{"p.go"}, map[string]string{"p.go": src})
	spec := &taintSpec{
		tracked: func(tt types.Type) bool { return namedIn(tt, "p", "view") },
		source: func(p *Pass, e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "newView"
		},
	}
	type escape struct {
		line int
		kind escapeKind
		what string
	}
	var got []escape
	pass := &Pass{
		Analyzer: &Analyzer{Name: "taint"},
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) {},
	}
	runTaintFlow(pass, spec, func(pos token.Pos, kind escapeKind, what string) {
		p := pkg.Fset.Position(pos)
		got = append(got, escape{line: p.Line, kind: kind, what: what})
	})
	want := []escape{
		{line: 11, kind: escapeField, what: "h.v"},     // storesField
		{line: 16, kind: escapeReturn, what: "v"},      // returns
		{line: 21, kind: escapeReturn, what: "<expr>"}, // returnsClosure
		{line: 27, kind: escapeField, what: "h.v"},     // loopCarried, via fixpoint
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("escapes:\n got %+v\nwant %+v", got, want)
	}
}
