package lint

import (
	"go/ast"
	"strings"
)

// SelBounds confines raw selection-vector element access to the vector
// package itself. Outside internal/vector, code must go through the Batch
// helpers (ForEach, ActiveSel, NumRows, Row, WithSel, Truncate): indexing
// b.Sel[i] directly is wrong whenever Sel is nil (every physical row
// active) and bypasses the monotonicity contract the parallel scan's merge
// relies on. Nil checks, len(b.Sel), and passing b.Sel wholesale when
// constructing a view remain allowed — only element access (indexing,
// slicing, ranging) is flagged.
var SelBounds = &Analyzer{
	Name: "selbounds",
	Doc:  "Batch.Sel element access must use the vector.Batch helpers outside internal/vector",
	Run:  runSelBounds,
}

func runSelBounds(pass *Pass) error {
	path := pass.Pkg.Path()
	if path == "internal/vector" || strings.HasSuffix(path, "/internal/vector") {
		return nil
	}
	isBatchSel := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sel" {
			return false
		}
		tv, ok := pass.Info.Types[sel.X]
		return ok && isBatchType(tv.Type)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IndexExpr:
				if isBatchSel(x.X) {
					pass.Reportf(x.Pos(), "raw Batch.Sel indexing outside internal/vector; use the Batch helpers (ForEach, ActiveSel, Row)")
				}
			case *ast.SliceExpr:
				if isBatchSel(x.X) {
					pass.Reportf(x.Pos(), "raw Batch.Sel slicing outside internal/vector; use the Batch helpers (ForEach, ActiveSel, Truncate)")
				}
			case *ast.RangeStmt:
				if isBatchSel(x.X) {
					pass.Reportf(x.X.Pos(), "ranging over Batch.Sel outside internal/vector misses the nil-Sel (all rows active) case; use Batch.ForEach")
				}
			}
			return true
		})
	}
	return nil
}
