package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TypedAlias guards the Storage v2 zero-copy contract: a vector.TypedCol is
// a view over its chunk's arrays — Slice never copies and the raw
// accessors (Ints, Floats, Strs, Dict, Codes, Bools) hand out the backing
// slices themselves. A view (or a backing slice obtained from one) must
// not outlive the scan that produced it: storing it into a struct field,
// returning it, or capturing it in a closure that escapes pins the whole
// chunk in memory and — worse — silently reads stale storage if the chunk
// is ever compacted or evicted. Materialize and ValueAt are the sanctioned
// escapes (they build owned variants); placing views in a vector.Batch is
// the sanctioned carrier (batches are the scan-lifetime unit the executor
// already reasons about). The vector package itself owns the
// representation and is exempt; constructors (NewInt64Col, ...) produce
// owned columns and start clean, so storage chunk building passes.
//
// Runs on the dataflow core: views flow through assignments, appends,
// slices and view calls; escapes are reported where the value leaves the
// function.
var TypedAlias = &Analyzer{
	Name: "typedalias",
	Doc:  "TypedCol views and their backing slices must not outlive the scan; Materialize is the escape hatch",
	Run:  runTypedAlias,
}

// typedViewMethods return another view of the same chunk storage when
// invoked on a view.
var typedViewMethods = map[string]bool{
	"Slice": true, "Ints": true, "Floats": true, "Bools": true,
	"Strs": true, "Dict": true, "Codes": true,
}

// isTypedColType reports whether t is *vector.TypedCol (or a slice of it).
func isTypedColType(t types.Type) bool {
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return namedIn(s.Elem(), "internal/vector", "TypedCol")
	}
	return namedIn(t, "internal/vector", "TypedCol")
}

func runTypedAlias(pass *Pass) error {
	if hasPathSuffix(pass.Pkg.Path(), "internal/vector") || pass.Pkg.Path() == "internal/vector" {
		return nil // the vector package owns the representation
	}
	spec := &taintSpec{
		tracked: isTypedColType,
		source: func(p *Pass, e ast.Expr) bool {
			switch x := e.(type) {
			case *ast.CallExpr:
				// chunk.Typed() / b.TypedCol(i): any call returning a view.
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return false
				}
				if sel.Sel.Name != "Typed" && sel.Sel.Name != "TypedCol" {
					return false
				}
				tv, ok := p.Info.Types[x]
				return ok && isTypedColType(tv.Type)
			case *ast.SelectorExpr:
				// b.Typed: the batch's view list.
				if x.Sel.Name != "Typed" {
					return false
				}
				tv, ok := p.Info.Types[x.X]
				if !ok || !isBatchType(tv.Type) {
					return false
				}
				fv, ok := p.Info.Types[x]
				return ok && isTypedColType(fv.Type)
			}
			return false
		},
		viewCall: func(p *Pass, call *ast.CallExpr) bool {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			return ok && typedViewMethods[sel.Sel.Name]
		},
		allowComposite: func(p *Pass, lit *ast.CompositeLit) bool {
			tv, ok := p.Info.Types[lit]
			return ok && isBatchType(tv.Type)
		},
		allowFieldStore: func(p *Pass, sel *ast.SelectorExpr) bool {
			// b.Typed[i] = view / b.Typed = views: batches carry views by design.
			if sel.Sel.Name != "Typed" {
				return false
			}
			tv, ok := p.Info.Types[sel.X]
			return ok && isBatchType(tv.Type)
		},
	}
	runTaintFlow(pass, spec, func(pos token.Pos, kind escapeKind, what string) {
		pass.Reportf(pos, "TypedCol view %s %s; views alias chunk storage and must not outlive the scan — use Materialize for an owned copy", kind, what)
	})
	return nil
}
