package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for the patterns and decodes
// the JSON stream. -export populates each package's export-data file from
// the build cache, which is what lets the loader type-check source against
// compiled dependency signatures without golang.org/x/tools.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,CgoFiles,Export,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportLookup returns a gc export-data lookup function over the listed
// packages' Export files.
func exportLookup(pkgs []*listedPackage) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string)
	for _, lp := range pkgs {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// typeCheck parses and checks one package's files against imp.
func typeCheck(fset *token.FileSet, pkgPath string, filenames []string, src map[string][]byte, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		var f *ast.File
		var err error
		if body, ok := src[fn]; ok {
			f, err = parser.ParseFile(fset, fn, body, parser.ParseComments|parser.SkipObjectResolution)
		} else {
			f, err = parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		}
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	info := newInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// moduleListCache memoizes the `go list -deps -export` run LoadDir needs:
// every fixture resolves the same in-module import graph, and the subprocess
// (plus cache-filling -export) dominates the harness's runtime when each of
// a dozen fixtures pays it separately. Keyed by pattern; all fixture dirs
// live inside the one module, so the resolution is dir-independent.
var moduleListCache struct {
	mu    sync.Mutex
	byPat map[string][]*listedPackage
}

func goListCached(dir, pattern string) ([]*listedPackage, error) {
	moduleListCache.mu.Lock()
	defer moduleListCache.mu.Unlock()
	if listed, ok := moduleListCache.byPat[pattern]; ok {
		return listed, nil
	}
	listed, err := goList(dir, pattern)
	if err != nil {
		return nil, err
	}
	if moduleListCache.byPat == nil {
		moduleListCache.byPat = make(map[string][]*listedPackage)
	}
	moduleListCache.byPat[pattern] = listed
	return listed, nil
}

// LoadDir parses and type-checks the single fixture package made of the .go
// files directly inside dir, resolving its imports (the real jsonpark
// packages and the stdlib) through the module's compiled export data. It
// exists for the analyzer tests: testdata packages are invisible to go
// list, so they are checked from source against the module they sit in.
func LoadDir(dir, pkgPath string) (*Package, error) {
	listed, err := goListCached(dir, "jsonpark/...")
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	return typeCheck(fset, pkgPath, filenames, nil, imp)
}

// LoadPackages loads and type-checks the packages matched by the patterns
// (relative to dir), using export data for all dependencies. Test files are
// not loaded: the analyzers gate the shipped source.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo; jsqlint only supports pure Go packages", lp.ImportPath)
		}
		var filenames []string
		for _, f := range lp.GoFiles {
			filenames = append(filenames, filepath.Join(lp.Dir, f))
		}
		if len(filenames) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, lp.ImportPath, filenames, nil, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
