package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LogKeys enforces that the structured query log stays greppable: every
// field key passed to qlog.F and every event name passed to
// (*qlog.Logger).Log must be a constant string. A key built with
// fmt.Sprintf or carried in a variable can encode unbounded cardinality
// ("user_1234"), which breaks downstream aggregation and makes the log
// schema undiscoverable by reading the source. Values stay free-form —
// only the key space is pinned. Constness is judged by the type checker,
// so const idents and compile-time concatenations pass.
var LogKeys = &Analyzer{
	Name: "logkeys",
	Doc:  "structured-log keys and event names must be constant strings",
	Run:  runLogKeys,
}

// qlogFunc resolves a call to a function or method of the qlog package,
// returning its name ("" when the callee is something else).
func qlogFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	path := fn.Pkg().Path()
	if path != "obsv/qlog" && !strings.HasSuffix(path, "/obsv/qlog") {
		return ""
	}
	return fn.Name()
}

// isConstString reports whether the type checker evaluated e to a
// compile-time constant.
func isConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func runLogKeys(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch qlogFunc(pass.Info, call) {
			case "F":
				if len(call.Args) >= 1 && !isConstString(pass.Info, call.Args[0]) {
					pass.Reportf(call.Args[0].Pos(),
						"query-log key %s must be a constant string (dynamic keys make the log schema unbounded)",
						exprString(call.Args[0]))
				}
			case "Log":
				if len(call.Args) >= 2 && !isConstString(pass.Info, call.Args[1]) {
					pass.Reportf(call.Args[1].Pos(),
						"query-log event %s must be a constant string (dynamic events make the log schema unbounded)",
						exprString(call.Args[1]))
				}
			}
			return true
		})
	}
	return nil
}
