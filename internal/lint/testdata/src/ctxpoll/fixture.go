// Fixture for the ctxpoll analyzer: a loop that absorbs unbounded input —
// NextBatch on a concrete operator, Next on a spill-run reader — must poll
// cancellation every iteration. The interface call is exempt (prepare wraps
// every operator in a cancelIter), and polls resolved through a bound
// closure or a package helper count.
package ctxpoll

import (
	"context"

	"jsonpark/internal/vector"
)

type src struct{}

func (s *src) NextBatch() (*vector.Batch, error) { return nil, nil }

type reader struct{}

func (r *reader) Next() ([]byte, error) { return nil, nil }

type qctx struct{ err error }

func (c *qctx) cancelled() error { return c.err }

type batchIter interface {
	NextBatch() (*vector.Batch, error)
}

// True positive: the drain never looks at cancellation.
func drainNoPoll(s *src) error {
	for { // want `loop absorbs batches via s.NextBatch without polling cancellation`
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// True positive: a spill-run replay loop with no poll.
func replayNoPoll(r *reader) (int, error) {
	n := 0
	for { // want `loop absorbs batches via r.Next without polling cancellation`
		rec, err := r.Next()
		if err != nil {
			return n, err
		}
		if rec == nil {
			return n, nil
		}
		n += len(rec)
	}
}

// Compliant: polls the engine context each iteration.
func drainPolls(ctx *qctx, s *src) error {
	for {
		if err := ctx.cancelled(); err != nil {
			return err
		}
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// Compliant: ctx.Err() on a context.Context is a poll.
func drainStdCtx(ctx context.Context, s *src) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// Compliant: the poll goes through a bound closure — the parallel workers'
// checkCancel pattern, resolved through the def-use bindings.
func drainClosure(ctx *qctx, s *src) error {
	checkCancel := func() bool { return ctx.cancelled() != nil }
	for {
		if checkCancel() {
			return nil
		}
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

func pollHelper(ctx *qctx) error { return ctx.cancelled() }

// Compliant: the poll goes through a package-level helper that polls.
func drainHelper(ctx *qctx, s *src) error {
	for {
		if err := pollHelper(ctx); err != nil {
			return err
		}
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}

// Compliant: NextBatch through the iterator interface is already wrapped in
// a cancelIter; the interface call is the poll.
func drainIface(it batchIter) error {
	for {
		b, err := it.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
	}
}
