// Fixture for the typedalias analyzer: TypedCol views and the backing
// slices handed out by the raw accessors must not outlive the scan that
// produced them. Storing a view in a struct field, returning it, or
// returning a closure that captures it is an escape; Materialize and
// ValueAt build owned values and are the sanctioned way out.
package typedalias

import (
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

type op struct {
	col  *vector.TypedCol
	ints []int64
}

// True positive: the view is stored in a struct field.
func (o *op) keepView(b *vector.Batch) {
	tc := b.TypedCol(0)
	o.col = tc // want `stored in field o.col`
}

// True positive: a backing slice from a raw accessor is just as aliased as
// the view itself.
func (o *op) keepBacking(b *vector.Batch) {
	tc := b.TypedCol(0)
	o.ints = tc.Ints() // want `stored in field o.ints`
}

// True positive: a sub-view flows through a local and is returned.
func window(tc *vector.TypedCol, lo, hi int) *vector.TypedCol {
	v := tc.Slice(lo, hi)
	return v // want `returned`
}

// True positive: the closure captures the backing slice, and returning the
// closure is returning the view.
func accessor(tc *vector.TypedCol) func(int) int64 {
	xs := tc.Ints()
	return func(i int) int64 { return xs[i] } // want `returned`
}

// True positive, loop-carried: the view is assigned late in the loop body
// and reaches the field store on the next iteration — only the fixpoint
// sees it.
func (o *op) loopCarried(b *vector.Batch) {
	var v *vector.TypedCol
	for i := 0; i < 2; i++ {
		o.col = v // want `stored in field o.col`
		v = b.TypedCol(i)
	}
}

// Compliant: Materialize produces owned values; retaining those is the
// documented escape hatch.
type sink struct{ vals []variant.Value }

func (s *sink) keepOwned(tc *vector.TypedCol) {
	s.vals = tc.Materialize(s.vals[:0])
}

// Compliant: consuming the backing slice within the call is scan-lifetime
// use.
func sum(tc *vector.TypedCol) int64 {
	var n int64
	for _, x := range tc.Ints() {
		n += x
	}
	return n
}

// Compliant: batches are the sanctioned carrier for views.
func rebatch(tc *vector.TypedCol) *vector.Batch {
	return &vector.Batch{Typed: []*vector.TypedCol{tc.Slice(0, 1)}}
}

func each(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// Compliant: a view-capturing closure passed to a call (the ForEach shape)
// stays inside the scan; only returning or storing the closure escapes.
func consume(tc *vector.TypedCol) int64 {
	var total int64
	xs := tc.Ints()
	each(tc.Len(), func(i int) { total += xs[i] })
	return total
}

// Compliant because suppressed: a documented intentional escape.
func suppressed(tc *vector.TypedCol) []int64 {
	//jsqlint:ignore typedalias fixture for the suppression path
	return tc.Ints()
}
