// Fixture for the selbounds analyzer: raw Batch.Sel element access is
// wrong whenever Sel is nil (all physical rows active) and belongs only in
// internal/vector.
package selbounds

import "jsonpark/internal/vector"

// True positive: direct indexing skips the nil-Sel case.
func index(b *vector.Batch) int {
	return b.Sel[0] // want `raw Batch\.Sel indexing`
}

// True positive: ranging has the same blind spot.
func iterate(b *vector.Batch) int {
	n := 0
	for _, i := range b.Sel { // want `ranging over Batch\.Sel`
		n += i
	}
	return n
}

// True positive: a subslice still bypasses the helpers.
func slice(b *vector.Batch) []int {
	return b.Sel[1:] // want `raw Batch\.Sel slicing`
}

// Guarded false positives: nil checks, len, wholesale propagation into a
// derived batch, and the ForEach helper are the sanctioned forms.
func sanctioned(b *vector.Batch) int {
	n := 0
	b.ForEach(func(i int) { n += i })
	if b.Sel != nil {
		n += len(b.Sel)
	}
	derived := &vector.Batch{Cols: b.Cols, Sel: b.Sel}
	return n + derived.NumRows()
}
