// Fixture for the spanend analyzer: every obsv span started must be ended
// and every trace finished, on all paths. Passing a span to a helper does
// NOT discharge the obligation — helpers annotate, creators end.
package spanend

import "jsonpark/internal/obsv"

func annotate(sp *obsv.Span) { sp.SetAttr("k", "v") }
func work() error            { return nil }

// True positive: the error return abandons the span with its clock open.
func leakOnError(parent *obsv.Span) error {
	sp := parent.Child("stage")
	if err := work(); err != nil {
		return err // want `sp may not be ended on this return path`
	}
	sp.End()
	return nil
}

// True positive: started and never ended at all.
func neverEnded(parent *obsv.Span) {
	sp := parent.Child("stage") // want `sp is never ended in neverEnded`
	annotate(sp)
}

// True positive: an unfinished trace never reaches the tracer's ring
// buffer, so /debug/queries silently loses the query.
func traceLeak(tr *obsv.Tracer) error {
	t := tr.Start("query")
	if err := work(); err != nil {
		return err // want `t may not be ended on this return path`
	}
	t.Finish()
	return nil
}

// Guarded false positive: defer covers every path, including the error
// return — the preferred shape.
func deferred(parent *obsv.Span) error {
	sp := parent.Child("stage")
	defer sp.End()
	annotate(sp) // a helper call does not transfer ownership
	return work()
}

// Guarded false positive: a closure capturing the trace takes over
// finishing it (the engine's finish-callback shape).
func finishClosure(tr *obsv.Tracer) func() {
	t := tr.Start("query")
	return func() { t.Finish() }
}
