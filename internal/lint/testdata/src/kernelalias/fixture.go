// Fixture for the kernelalias analyzer. The kernel type mirrors the
// engine's vecFn: its result may alias a closure-owned buffer that the next
// call overwrites.
package kernelalias

import (
	"jsonpark/internal/variant"
	"jsonpark/internal/vector"
)

type kernel = func(*vector.Batch) ([]variant.Value, error)

type op struct {
	fn  kernel
	out []variant.Value
}

// True positive: the buffer escapes into a struct field.
func (o *op) storeField(b *vector.Batch) error {
	vals, err := o.fn(b)
	if err != nil {
		return err
	}
	o.out = vals // want `kernel output vector stored in field o\.out`
	return nil
}

// True positive: returning the kernel's result hands the caller a vector
// that the next NextBatch invalidates.
func (o *op) returnDirect(b *vector.Batch) ([]variant.Value, error) {
	return o.fn(b) // want `kernel output vector returned without a copy`
}

// True positive: the taint flows through a local into a returned batch.
func (o *op) returnViaBatch(b *vector.Batch) (*vector.Batch, error) {
	cols := make([][]variant.Value, 1)
	vals, err := o.fn(b)
	if err != nil {
		return nil, err
	}
	cols[0] = vals
	return &vector.Batch{Cols: cols}, nil // want `kernel output vector returned without a copy`
}

// True positive: a closure stores the buffer in a variable that outlives
// the call.
func capture(fn kernel) func(*vector.Batch) error {
	var last []variant.Value
	return func(b *vector.Batch) error {
		vals, err := fn(b)
		if err != nil {
			return err
		}
		last = vals // want `kernel output vector stored in captured variable last`
		_ = last
		return nil
	}
}

// Guarded false positive: an ellipsis append copies the elements out of the
// buffer, so the retained slice is detached.
func (o *op) copyOut(b *vector.Batch) error {
	vals, err := o.fn(b)
	if err != nil {
		return err
	}
	o.out = append(o.out[:0], vals...)
	return nil
}

// Guarded false positive: element reads produce values, not the slice
// header; the hazard is retention, not use.
func (o *op) readElem(b *vector.Batch) (variant.Value, error) {
	vals, err := o.fn(b)
	if err != nil {
		return variant.Value{}, err
	}
	return vals[0], nil
}

// Guarded false positive: documented intentional aliasing is suppressed by
// the directive; linttest fails on any diagnostic without a want, so this
// line doubles as the suppression test.
func (o *op) suppressed(b *vector.Batch) error {
	vals, err := o.fn(b)
	if err != nil {
		return err
	}
	o.out = vals //jsqlint:ignore kernelalias fixture-documented aliasing
	return nil
}

// typedKernel mirrors the typed-kernel helpers of the engine's exprt.go:
// extra parameters after the leading batch (typed views, scratch buffers),
// same reused-output-buffer contract on the slice result.
type typedKernel = func(b *vector.Batch, scratch []variant.Value) ([]variant.Value, error)

type typedOp struct {
	fn  typedKernel
	out []variant.Value
}

// True positive: a typed kernel's result escapes into a struct field just
// like a plain vecFn's.
func (o *typedOp) storeField(b *vector.Batch) error {
	vals, err := o.fn(b, nil)
	if err != nil {
		return err
	}
	o.out = vals // want `kernel output vector stored in field o\.out`
	return nil
}

// True positive: returning the typed kernel's buffer without a copy.
func (o *typedOp) returnDirect(b *vector.Batch) ([]variant.Value, error) {
	return o.fn(b, nil) // want `kernel output vector returned without a copy`
}

// True positive: closure capture of a typed kernel's buffer.
func captureTyped(fn typedKernel) func(*vector.Batch) error {
	var last []variant.Value
	return func(b *vector.Batch) error {
		vals, err := fn(b, nil)
		if err != nil {
			return err
		}
		last = vals // want `kernel output vector stored in captured variable last`
		_ = last
		return nil
	}
}

// Guarded false positive: the ellipsis-append copy detaches from a typed
// kernel's buffer exactly as it does for a plain kernel's.
func (o *typedOp) copyOut(b *vector.Batch) error {
	vals, err := o.fn(b, o.out[:0])
	if err != nil {
		return err
	}
	o.out = append(o.out[:0], vals...)
	return nil
}

// Guarded false positive: a batch-leading helper whose first result is not
// a slice (count, error) is not a kernel; retaining its inputs is fine.
func countRows(b *vector.Batch, limit int) (int, error) {
	return b.NumRows(), nil
}

func useCount(b *vector.Batch) error {
	n, err := countRows(b, 10)
	if err != nil {
		return err
	}
	_ = n
	return nil
}
