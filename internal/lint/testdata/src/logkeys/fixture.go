// Fixture for the logkeys analyzer: structured-log field keys and event
// names must be compile-time constant strings. Dynamic keys turn the log
// schema into an unbounded namespace that no dashboard can aggregate.
package logkeys

import (
	"fmt"

	"jsonpark/internal/obsv/qlog"
)

const rowsKey = "rows"

// True positive: a Sprintf key encodes per-entity cardinality.
func sprintfKey(l *qlog.Logger, user int) {
	l.Log(qlog.LevelInfo, "query", qlog.F(fmt.Sprintf("user_%d", user), 1)) // want `query-log key fmt\.Sprintf\(\.\.\.\) must be a constant string`
}

// True positive: a variable key hides the schema from a source grep.
func variableKey(l *qlog.Logger, key string) {
	l.Log(qlog.LevelInfo, "query", qlog.F(key, "v")) // want `query-log key key must be a constant string`
}

// True positive: event names are the log's primary index and must be
// enumerable by reading the source.
func variableEvent(l *qlog.Logger, event string) {
	l.Log(qlog.LevelWarn, event) // want `query-log event event must be a constant string`
}

// True positive: concatenating with a runtime value is as dynamic as
// Sprintf.
func concatKey(l *qlog.Logger, suffix string) {
	l.Log(qlog.LevelInfo, "query", qlog.F("phase_"+suffix, 1)) // want `query-log key <expr> must be a constant string`
}

// Guarded false positive: a string literal is the canonical form.
func literalKey(l *qlog.Logger) {
	l.Log(qlog.LevelInfo, "query", qlog.F("rows", 42))
}

// Guarded false positive: a const ident is still compile-time constant.
func constKey(l *qlog.Logger) {
	l.Log(qlog.LevelInfo, "query", qlog.F(rowsKey, 42))
}

// Guarded false positive: concatenation of constants folds at compile
// time, so grep still finds the full key.
func constConcat(l *qlog.Logger) {
	l.Log(qlog.LevelInfo, "query", qlog.F("mem_"+"peak", 1))
}

// Guarded false positive: an F function outside the qlog package is not a
// structured-log constructor.
func otherF(key string) {
	F(key, 1)
}

func F(key string, v any) { _ = key; _ = v }

// Guarded false positive: field values stay free-form; only keys are
// pinned.
func dynamicValue(l *qlog.Logger, sql string) {
	l.Log(qlog.LevelInfo, "query", qlog.F("sql", sql))
}
