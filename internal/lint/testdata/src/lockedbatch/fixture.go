// Fixture for the lockedbatch analyzer: NextBatch blocks on the morsel
// workers' results channel, so calling it with a mutex held can deadlock
// the pool under backpressure.
package lockedbatch

import (
	"sync"

	"jsonpark/internal/vector"
)

type iter struct{}

func (i *iter) NextBatch() (*vector.Batch, error) { return nil, nil }
func (i *iter) Close()                            {}

type consumer struct {
	mu   sync.Mutex
	rwmu sync.RWMutex
	in   *iter
	last *vector.Batch
}

// True positive: deferred unlock holds c.mu across the blocking call.
func (c *consumer) deferredHold() (*vector.Batch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.in.NextBatch() // want `NextBatch called while holding c\.mu`
}

// True positive: read locks block writers just the same.
func (c *consumer) readLockHold() error {
	c.rwmu.RLock()
	b, err := c.in.NextBatch() // want `NextBatch called while holding c\.rwmu`
	c.last = b
	c.rwmu.RUnlock()
	return err
}

// Guarded false positive: the lock is released before the blocking call.
func (c *consumer) release() (*vector.Batch, error) {
	c.mu.Lock()
	last := c.last
	c.mu.Unlock()
	_ = last
	return c.in.NextBatch()
}

// Guarded false positive: the goroutine body is its own unit; the lock held
// here does not flow into it.
func (c *consumer) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		_, _ = c.in.NextBatch()
	}()
}
