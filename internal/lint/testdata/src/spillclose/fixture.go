// Fixture for the spillclose analyzer: a storage.RunWriter must reach
// Finish or Abort on every path and a SpillRun must reach Close, unless
// ownership is transferred. A leaked handle is a leaked descriptor and a
// leaked temp file.
package spillclose

import "jsonpark/internal/storage"

// True positive: the writer leaks when a mid-write failure returns early.
func leakOnError(recs [][]byte) (*storage.SpillRun, error) {
	w, err := storage.NewRunWriter("fixture")
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, werr := w.WriteRecord(rec); werr != nil {
			return nil, werr // want `w may not be closed on this return path`
		}
	}
	return w.Finish()
}

// True positive: acquired and dropped on the floor.
func discarded() {
	storage.NewRunWriter("fixture") // want `result of storage.NewRunWriter must be closed but is discarded`
}

// True positive: the finished run (and its temp file) is never closed.
func runLeaked(w *storage.RunWriter) (int64, error) {
	run, err := w.Finish()
	if err != nil {
		return 0, err
	}
	n := run.Bytes()
	return n, nil // want `run may not be closed on this return path`
}

// Compliant: Abort on the failure path, Finish on success.
func writeAll(recs [][]byte) (*storage.SpillRun, error) {
	w, err := storage.NewRunWriter("fixture")
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, werr := w.WriteRecord(rec); werr != nil {
			w.Abort()
			return nil, werr
		}
	}
	return w.Finish()
}

type agg struct{ runs []*storage.SpillRun }

// Compliant: ownership transferred into the operator's run list, whose
// discard path closes every run.
func (a *agg) keepRun(w *storage.RunWriter) error {
	run, err := w.Finish()
	if err != nil {
		return err
	}
	a.runs = append(a.runs, run)
	return nil
}

// Compliant: deferred Close covers every path out of the read-back.
func readBack(w *storage.RunWriter) (int, error) {
	run, err := w.Finish()
	if err != nil {
		return 0, err
	}
	defer run.Close()
	n := 0
	rr := run.NewReader()
	for {
		rec, rerr := rr.Next()
		if rerr != nil {
			return n, rerr
		}
		if rec == nil {
			return n, nil
		}
		n++
	}
}
