// Fixture for the nullbits analyzer: null-bitmap words are only touched
// through the vector helpers. Hand-rolled word/bit math silently reads the
// wrong rows once a view's bit offset is non-zero; word-granular copies
// (serialization) carry no shifts and stay unflagged.
package nullbits

import "jsonpark/internal/vector"

// True positive: hand-rolled bit set.
func setBit(words []uint64, i int) {
	words[i>>6] |= 1 << (i & 63) // want `raw null-bitmap bit access`
}

// True positive: hand-rolled bit clear.
func clearBit(words []uint64, i int) {
	words[i>>6] &^= 1 << (i & 63) // want `raw null-bitmap bit access`
}

// True positive: masked read straight off the words.
func getBit(words []uint64, i int) bool {
	return words[i>>6]&(1<<uint(i&63)) != 0 // want `raw null-bitmap bit access`
}

// Compliant: word-granular copy, the serialization shape.
func copyWords(dst, src []uint64) {
	for i := range src {
		dst[i] = src[i]
	}
}

// Compliant: the sanctioned helpers.
func build(n int, nullRows []int) []uint64 {
	words := make([]uint64, vector.NullBitmapWords(n))
	for _, i := range nullRows {
		vector.SetNullBit(words, i)
	}
	return words
}

// Compliant: reads go through TypedCol.Null.
func countNulls(tc *vector.TypedCol) int {
	n := 0
	for i := 0; i < tc.Len(); i++ {
		if tc.Null(i) {
			n++
		}
	}
	return n
}

// Compliant: shifts over a non-bitmap slice type are someone else's
// business.
func pick(xs []uint32, i int) uint32 {
	return xs[i>>2]
}
