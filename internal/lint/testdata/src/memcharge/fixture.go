// Fixture for the memcharge analyzer: operators that retain batch data
// must charge their accounting handle, every charged field needs a
// releasing method, and an acquired handle must reach releaseAll on all
// paths. The mem type is a structural stand-in for the engine's opMem —
// the analyzer matches the charge/releaseAll method-set shape, not a named
// type.
package memcharge

import "jsonpark/internal/vector"

type mem struct{ used int64 }

func (m *mem) charge(n int64) bool { m.used += n; return false }
func (m *mem) releaseAll()         { m.used = 0 }

type src struct{}

func (s *src) NextBatch() (*vector.Batch, error) { return nil, nil }

type sorter struct {
	mem     *mem
	batches []*vector.Batch
}

// True positive: every pulled batch is retained across iterations and the
// loop never charges.
func (o *sorter) absorbUncharged(s *src) error {
	for {
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.batches = append(o.batches, b) // want `batch data retained in o.batches by an absorbing loop that never charges`
	}
}

// Compliant: the same loop, charging per batch.
func (o *sorter) absorbCharged(s *src) error {
	for {
		b, err := s.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.batches = append(o.batches, b)
		o.mem.charge(16)
	}
}

// Compliant: sorter pairs its charges with a releasing method.
func (o *sorter) Close() {
	o.batches = nil
	o.mem.releaseAll()
}

type leaky struct{ mem *mem }

// True positive: leaky charges its field but no leaky method ever releases
// it.
func (l *leaky) absorb(n int64) {
	l.mem.charge(n) // want `leaky.mem is charged but no leaky method calls`
}

type ctx struct{}

func (c *ctx) opMemFor() *mem { return &mem{} }

// True positive: the handle is acquired and the accounting is never
// returned to the query budget.
func leakHandle(c *ctx) {
	m := c.opMemFor() // want `m is never released in leakHandle`
	m.charge(1)
}

// Compliant: released via defer.
func usesHandle(c *ctx) {
	m := c.opMemFor()
	defer m.releaseAll()
	m.charge(4)
}
