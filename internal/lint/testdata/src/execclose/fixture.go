// Fixture for the execclose analyzer: operators acquired from constructors
// must be Closed on every path, including the error returns between
// acquiring a child and handing it to a parent.
package execclose

import "jsonpark/internal/vector"

type iter struct{}

func (i *iter) NextBatch() (*vector.Batch, error) { return nil, nil }
func (i *iter) Close()                            {}

func newIter() (*iter, error) { return &iter{}, nil }
func compile() error          { return nil }

type parent struct{ in *iter }

func (p *parent) NextBatch() (*vector.Batch, error) { return p.in.NextBatch() }
func (p *parent) Close()                            { p.in.Close() }

// True positive: the compile failure path leaks the child (and its morsel
// workers).
func leakOnError() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	if err := compile(); err != nil {
		return nil, err // want `in may not be closed on this return path`
	}
	return in, nil
}

// True positive: the iterator is acquired and dropped on the floor.
func discarded() {
	newIter() // want `result of newIter must be closed but is discarded`
}

// True positive: acquired, used, never closed on any path.
func neverClosed() {
	in, _ := newIter() // want `in is never closed in neverClosed`
	_, _ = in.NextBatch()
}

// True positive: a later error return that is NOT the acquisition's own
// failure path must close first.
func leakOnUse() error {
	in, err := newIter()
	if err != nil {
		return err
	}
	_, err = in.NextBatch()
	return err // want `in may not be closed on this return path`
}

// Guarded false positive: the acquisition's own failure path returns nil
// resources; nothing to close.
func ownFailurePath() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	return in, nil
}

// Guarded false positive: deferred Close covers every path.
func deferred() error {
	in, err := newIter()
	if err != nil {
		return err
	}
	defer in.Close()
	return compile()
}

// Guarded false positive: explicit Close before the error return.
func closedOnError() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	if err := compile(); err != nil {
		in.Close()
		return nil, err
	}
	return in, nil
}

// Guarded false positive: ownership transfers to the wrapping operator,
// whose Close releases the child.
func wrapped() (*parent, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	return &parent{in: in}, nil
}

// idemParent mirrors the engine's joinIter lifecycle: a build phase
// consumes and closes one child mid-stream, nils the field, and the
// operator's Close re-checks each field before closing — so drivers may
// Close repeatedly (and after build) without double-closing a child.
type idemParent struct{ left, right *iter }

func (p *idemParent) build() error {
	_, err := p.right.NextBatch()
	p.right.Close()
	p.right = nil // build owns the right side; Close must not touch it again
	return err
}

func (p *idemParent) NextBatch() (*vector.Batch, error) {
	if p.right != nil {
		if err := p.build(); err != nil {
			return nil, err
		}
	}
	return p.left.NextBatch()
}

func (p *idemParent) Close() {
	if p.left != nil {
		p.left.Close()
		p.left = nil
	}
	if p.right != nil {
		p.right.Close()
		p.right = nil
	}
}

// Guarded false positive: both children transfer into the idempotent
// operator; the nil-after-close discipline inside idemParent satisfies the
// analyzer on every path, including the build error return.
func wrappedIdempotent() (*idemParent, error) {
	left, err := newIter()
	if err != nil {
		return nil, err
	}
	right, err := newIter()
	if err != nil {
		left.Close()
		return nil, err
	}
	return &idemParent{left: left, right: right}, nil
}
