// Fixture for the execclose analyzer: operators acquired from constructors
// must be Closed on every path, including the error returns between
// acquiring a child and handing it to a parent.
package execclose

import "jsonpark/internal/vector"

type iter struct{}

func (i *iter) NextBatch() (*vector.Batch, error) { return nil, nil }
func (i *iter) Close()                            {}

func newIter() (*iter, error) { return &iter{}, nil }
func compile() error          { return nil }

type parent struct{ in *iter }

func (p *parent) NextBatch() (*vector.Batch, error) { return p.in.NextBatch() }
func (p *parent) Close()                            { p.in.Close() }

// True positive: the compile failure path leaks the child (and its morsel
// workers).
func leakOnError() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	if err := compile(); err != nil {
		return nil, err // want `in may not be closed on this return path`
	}
	return in, nil
}

// True positive: the iterator is acquired and dropped on the floor.
func discarded() {
	newIter() // want `result of newIter must be closed but is discarded`
}

// True positive: acquired, used, never closed on any path.
func neverClosed() {
	in, _ := newIter() // want `in is never closed in neverClosed`
	_, _ = in.NextBatch()
}

// True positive: a later error return that is NOT the acquisition's own
// failure path must close first.
func leakOnUse() error {
	in, err := newIter()
	if err != nil {
		return err
	}
	_, err = in.NextBatch()
	return err // want `in may not be closed on this return path`
}

// Guarded false positive: the acquisition's own failure path returns nil
// resources; nothing to close.
func ownFailurePath() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	return in, nil
}

// Guarded false positive: deferred Close covers every path.
func deferred() error {
	in, err := newIter()
	if err != nil {
		return err
	}
	defer in.Close()
	return compile()
}

// Guarded false positive: explicit Close before the error return.
func closedOnError() (*iter, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	if err := compile(); err != nil {
		in.Close()
		return nil, err
	}
	return in, nil
}

// Guarded false positive: ownership transfers to the wrapping operator,
// whose Close releases the child.
func wrapped() (*parent, error) {
	in, err := newIter()
	if err != nil {
		return nil, err
	}
	return &parent{in: in}, nil
}
