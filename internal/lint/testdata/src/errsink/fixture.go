// Fixture for the errsink analyzer: statement-level calls that drop a
// load-bearing error (Close, Flush, Sync, Encode, Parse) are flagged;
// explicit `_ =` discards acknowledge the error and pass.
package errsink

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
)

// True positive: a failed Close can mean the last write never hit disk.
func closeFile(f *os.File) {
	f.Close() // want `error from f\.Close discarded`
}

// True positive: a deferred Flush failure silently truncates output.
func flushWriter(w *bufio.Writer) {
	defer w.Flush() // want `error from w\.Flush discarded`
}

// True positive: a broken pipe otherwise reads as success.
func encode(enc *json.Encoder, v any) {
	enc.Encode(v) // want `error from enc\.Encode discarded`
}

// Guarded false positive: checking the error is the fix.
func checked(f *os.File) error {
	return f.Close()
}

// Guarded false positive: an explicit discard is a documented decision.
func acknowledged(enc *json.Encoder, v any) {
	_ = enc.Encode(v)
}

// Guarded false positive: methods that return no error are not sinks, and
// strings.Builder writes are documented to never fail.
func harmless(sb *strings.Builder) string {
	sb.WriteString("x")
	sb.Reset()
	return sb.String()
}
