package lint_test

import (
	"testing"

	"jsonpark/internal/lint"
	"jsonpark/internal/lint/linttest"
)

// TestFixtures runs every analyzer against its golden fixture. The single
// parent test is what `make lint-fixtures` selects with -run.
func TestFixtures(t *testing.T) {
	for _, a := range lint.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			linttest.Run(t, a, a.Name)
		})
	}
}

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := lint.ByName("execclose, spanend")
	if err != nil || len(two) != 2 || two[0].Name != "execclose" || two[1].Name != "spanend" {
		t.Fatalf("ByName(\"execclose, spanend\") = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") should fail")
	}
}
