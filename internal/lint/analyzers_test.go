package lint_test

import (
	"testing"

	"jsonpark/internal/lint"
	"jsonpark/internal/lint/linttest"
)

func TestKernelAlias(t *testing.T) { linttest.Run(t, lint.KernelAlias, "kernelalias") }
func TestExecClose(t *testing.T)   { linttest.Run(t, lint.ExecClose, "execclose") }
func TestSpanEnd(t *testing.T)     { linttest.Run(t, lint.SpanEnd, "spanend") }
func TestSelBounds(t *testing.T)   { linttest.Run(t, lint.SelBounds, "selbounds") }
func TestLockedBatch(t *testing.T) { linttest.Run(t, lint.LockedBatch, "lockedbatch") }
func TestErrSink(t *testing.T)     { linttest.Run(t, lint.ErrSink, "errsink") }
func TestLogKeys(t *testing.T)     { linttest.Run(t, lint.LogKeys, "logkeys") }

func TestByName(t *testing.T) {
	all, err := lint.ByName("")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := lint.ByName("execclose, spanend")
	if err != nil || len(two) != 2 || two[0].Name != "execclose" || two[1].Name != "spanend" {
		t.Fatalf("ByName(\"execclose, spanend\") = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") should fail")
	}
}
