package jsoniq

import (
	"jsonpark/internal/variant"
)

// Rewrite applies back-end-agnostic expression-tree optimizations, mirroring
// RumbleDB's rewrite phase (§III-A2): constant folding of arithmetic, logic
// and conditionals over literals, and elimination of let-bound variables
// that are never referenced (dead code elimination).
func Rewrite(e Expr) Expr {
	e = foldConstants(e)
	e = eliminateDeadLets(e)
	return e
}

func foldConstants(e Expr) Expr {
	switch x := e.(type) {
	case *Literal, *VarRef, *Collection:
		return e
	case *FieldAccess:
		x.Base = foldConstants(x.Base)
		return x
	case *ArrayUnbox:
		x.Base = foldConstants(x.Base)
		return x
	case *ArrayIndex:
		x.Base = foldConstants(x.Base)
		x.Index = foldConstants(x.Index)
		return x
	case *ObjectCtor:
		for i := range x.Values {
			x.Values[i] = foldConstants(x.Values[i])
		}
		return x
	case *ArrayCtor:
		for i := range x.Items {
			x.Items[i] = foldConstants(x.Items[i])
		}
		return x
	case *Unary:
		x.Operand = foldConstants(x.Operand)
		if lit, ok := x.Operand.(*Literal); ok {
			switch x.Op {
			case "-":
				if v, err := variant.Neg(lit.Value); err == nil {
					return &Literal{pos: x.pos, Value: v}
				}
			case "not":
				return &Literal{pos: x.pos, Value: variant.Bool(!lit.Value.Truthy())}
			}
		}
		return x
	case *Binary:
		x.Left = foldConstants(x.Left)
		x.Right = foldConstants(x.Right)
		l, lok := x.Left.(*Literal)
		r, rok := x.Right.(*Literal)
		if lok && rok {
			if v, ok := foldBinary(x.Op, l.Value, r.Value); ok {
				return &Literal{pos: x.pos, Value: v}
			}
		}
		// Logical short circuits with one literal side.
		if x.Op == OpAnd {
			if lok && !l.Value.Truthy() {
				return &Literal{pos: x.pos, Value: variant.Bool(false)}
			}
			if lok && l.Value.Truthy() {
				return x.Right
			}
			if rok {
				if !r.Value.Truthy() {
					return &Literal{pos: x.pos, Value: variant.Bool(false)}
				}
				return x.Left
			}
		}
		if x.Op == OpOr {
			if lok && l.Value.Truthy() {
				return &Literal{pos: x.pos, Value: variant.Bool(true)}
			}
			if lok && !l.Value.Truthy() {
				return x.Right
			}
			if rok {
				if r.Value.Truthy() {
					return &Literal{pos: x.pos, Value: variant.Bool(true)}
				}
				return x.Left
			}
		}
		return x
	case *If:
		x.Cond = foldConstants(x.Cond)
		x.Then = foldConstants(x.Then)
		x.Else = foldConstants(x.Else)
		if lit, ok := x.Cond.(*Literal); ok {
			if lit.Value.Truthy() {
				return x.Then
			}
			return x.Else
		}
		return x
	case *FunctionCall:
		for i := range x.Args {
			x.Args[i] = foldConstants(x.Args[i])
		}
		return x
	case *FLWOR:
		for _, c := range x.Clauses {
			foldClause(c)
		}
		x.Return = foldConstants(x.Return)
		return x
	}
	return e
}

func foldClause(c Clause) {
	switch cl := c.(type) {
	case *ForClause:
		cl.In = foldConstants(cl.In)
	case *LetClause:
		cl.Expr = foldConstants(cl.Expr)
	case *WhereClause:
		cl.Cond = foldConstants(cl.Cond)
	case *GroupByClause:
		for i := range cl.Keys {
			if cl.Keys[i].Expr != nil {
				cl.Keys[i].Expr = foldConstants(cl.Keys[i].Expr)
			}
		}
	case *OrderByClause:
		for i := range cl.Keys {
			cl.Keys[i].Expr = foldConstants(cl.Keys[i].Expr)
		}
	}
}

func foldBinary(op BinaryOp, l, r variant.Value) (variant.Value, bool) {
	var v variant.Value
	var err error
	switch op {
	case OpAdd:
		v, err = variant.Add(l, r)
	case OpSub:
		v, err = variant.Sub(l, r)
	case OpMul:
		v, err = variant.Mul(l, r)
	case OpDiv:
		v, err = variant.Div(l, r)
	case OpIDiv:
		v, err = variant.IDiv(l, r)
	case OpMod:
		v, err = variant.Mod(l, r)
	case OpEq:
		return variant.Bool(variant.Compare(l, r) == 0), true
	case OpNe:
		return variant.Bool(variant.Compare(l, r) != 0), true
	case OpLt:
		return variant.Bool(variant.Compare(l, r) < 0), true
	case OpLe:
		return variant.Bool(variant.Compare(l, r) <= 0), true
	case OpGt:
		return variant.Bool(variant.Compare(l, r) > 0), true
	case OpGe:
		return variant.Bool(variant.Compare(l, r) >= 0), true
	case OpConcat:
		if l.Kind() == variant.KindString && r.Kind() == variant.KindString {
			return variant.String(l.AsString() + r.AsString()), true
		}
		return variant.Null, false
	default:
		return variant.Null, false
	}
	if err != nil {
		return variant.Null, false // leave runtime errors to execution
	}
	return v, true
}

// eliminateDeadLets removes let clauses whose variable is never referenced
// by later clauses or the return expression.
func eliminateDeadLets(e Expr) Expr {
	switch x := e.(type) {
	case *FLWOR:
		for _, c := range x.Clauses {
			rewriteClauseChildren(c)
		}
		x.Return = eliminateDeadLets(x.Return)
		kept := x.Clauses[:0]
		for i, c := range x.Clauses {
			let, ok := c.(*LetClause)
			if !ok {
				kept = append(kept, c)
				continue
			}
			used := exprUsesVar(x.Return, let.Var)
			for _, later := range x.Clauses[i+1:] {
				if clauseUsesVar(later, let.Var) {
					used = true
					break
				}
			}
			if used {
				kept = append(kept, c)
			}
		}
		x.Clauses = kept
		return x
	case *FieldAccess:
		x.Base = eliminateDeadLets(x.Base)
	case *ArrayUnbox:
		x.Base = eliminateDeadLets(x.Base)
	case *ArrayIndex:
		x.Base = eliminateDeadLets(x.Base)
		x.Index = eliminateDeadLets(x.Index)
	case *ObjectCtor:
		for i := range x.Values {
			x.Values[i] = eliminateDeadLets(x.Values[i])
		}
	case *ArrayCtor:
		for i := range x.Items {
			x.Items[i] = eliminateDeadLets(x.Items[i])
		}
	case *Unary:
		x.Operand = eliminateDeadLets(x.Operand)
	case *Binary:
		x.Left = eliminateDeadLets(x.Left)
		x.Right = eliminateDeadLets(x.Right)
	case *If:
		x.Cond = eliminateDeadLets(x.Cond)
		x.Then = eliminateDeadLets(x.Then)
		x.Else = eliminateDeadLets(x.Else)
	case *FunctionCall:
		for i := range x.Args {
			x.Args[i] = eliminateDeadLets(x.Args[i])
		}
	}
	return e
}

func rewriteClauseChildren(c Clause) {
	switch cl := c.(type) {
	case *ForClause:
		cl.In = eliminateDeadLets(cl.In)
	case *LetClause:
		cl.Expr = eliminateDeadLets(cl.Expr)
	case *WhereClause:
		cl.Cond = eliminateDeadLets(cl.Cond)
	case *GroupByClause:
		for i := range cl.Keys {
			if cl.Keys[i].Expr != nil {
				cl.Keys[i].Expr = eliminateDeadLets(cl.Keys[i].Expr)
			}
		}
	case *OrderByClause:
		for i := range cl.Keys {
			cl.Keys[i].Expr = eliminateDeadLets(cl.Keys[i].Expr)
		}
	}
}

func clauseUsesVar(c Clause, name string) bool {
	switch cl := c.(type) {
	case *ForClause:
		return exprUsesVar(cl.In, name)
	case *LetClause:
		return exprUsesVar(cl.Expr, name)
	case *WhereClause:
		return exprUsesVar(cl.Cond, name)
	case *GroupByClause:
		for _, k := range cl.Keys {
			if k.Expr != nil && exprUsesVar(k.Expr, name) {
				return true
			}
			if k.Expr == nil && k.Var == name {
				return true
			}
		}
	case *OrderByClause:
		for _, k := range cl.Keys {
			if exprUsesVar(k.Expr, name) {
				return true
			}
		}
	}
	return false
}

func exprUsesVar(e Expr, name string) bool {
	found := false
	Walk(e, func(n Expr) bool {
		if v, ok := n.(*VarRef); ok && v.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

// Walk traverses the expression tree in pre-order, descending into a node's
// children only while fn returns true. FLWOR clause subexpressions are
// visited as children of the FLWOR node.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *FieldAccess:
		Walk(x.Base, fn)
	case *ArrayUnbox:
		Walk(x.Base, fn)
	case *ArrayIndex:
		Walk(x.Base, fn)
		Walk(x.Index, fn)
	case *ObjectCtor:
		for _, v := range x.Values {
			Walk(v, fn)
		}
	case *ArrayCtor:
		for _, v := range x.Items {
			Walk(v, fn)
		}
	case *Unary:
		Walk(x.Operand, fn)
	case *Binary:
		Walk(x.Left, fn)
		Walk(x.Right, fn)
	case *If:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *FunctionCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *FLWOR:
		for _, c := range x.Clauses {
			switch cl := c.(type) {
			case *ForClause:
				Walk(cl.In, fn)
			case *LetClause:
				Walk(cl.Expr, fn)
			case *WhereClause:
				Walk(cl.Cond, fn)
			case *GroupByClause:
				for _, k := range cl.Keys {
					if k.Expr != nil {
						Walk(k.Expr, fn)
					}
				}
			case *OrderByClause:
				for _, k := range cl.Keys {
					Walk(k.Expr, fn)
				}
			}
		}
		Walk(x.Return, fn)
	}
}
