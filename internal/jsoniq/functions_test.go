package jsoniq

import (
	"strings"
	"testing"
)

func TestParseModuleWithFunctions(t *testing.T) {
	m, err := ParseModule(`
		declare function local:square($x) { $x * $x }
		declare function local:hypot($a, $b) { sqrt(local:square($a) + local:square($b)) }
		for $e in collection("c") return local:hypot($e.x, $e.y)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Functions) != 2 {
		t.Fatalf("decls = %d", len(m.Functions))
	}
	if m.Functions[1].Name != "hypot" || len(m.Functions[1].Params) != 2 {
		t.Fatalf("decl = %+v", m.Functions[1])
	}
}

func TestInlineSubstitutesBody(t *testing.T) {
	e, err := Parse(`
		declare function local:double($x) { $x + $x }
		for $e in collection("c") return local:double($e.v)`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(e)
	if strings.Contains(text, "double") {
		t.Errorf("call not inlined: %s", text)
	}
	if strings.Count(text, "$e.v") != 2 {
		t.Errorf("argument not substituted twice: %s", text)
	}
}

func TestInlineNestedCalls(t *testing.T) {
	e, err := Parse(`
		declare function local:sq($x) { $x * $x }
		declare function local:quad($x) { local:sq(local:sq($x)) }
		for $e in collection("c") return local:quad($e.v)`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(e)
	if strings.Contains(text, "sq") || strings.Contains(text, "quad") {
		t.Errorf("nested calls not fully inlined: %s", text)
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	_, err := Parse(`
		declare function local:loop($x) { local:loop($x) }
		for $e in collection("c") return local:loop($e)`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("expected recursion error, got %v", err)
	}
	_, err = Parse(`
		declare function local:a($x) { local:b($x) }
		declare function local:b($x) { local:a($x) }
		for $e in collection("c") return local:a($e)`)
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("expected mutual recursion error, got %v", err)
	}
}

func TestInlineAvoidsVariableCapture(t *testing.T) {
	// The function body binds $m; the caller's argument also references a
	// caller-side $m. Without alpha renaming, the body's for-binding would
	// capture the argument's $m.
	e, err := Parse(`
		declare function local:firstBig($arr, $cut) {
			(for $m in $arr[] where $m gt $cut return $m)[[1]]
		}
		for $e in collection("c")
		for $m in $e.rows[]
		return local:firstBig($m.vals, $m.cut)`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(e)
	// The inlined inner for must bind a renamed variable, not $m.
	if !strings.Contains(text, "#inl") {
		t.Errorf("bound variables not renamed: %s", text)
	}
	if strings.Contains(text, "for $m in $m.vals") {
		t.Errorf("capture occurred: %s", text)
	}
}

func TestInlineArityMismatch(t *testing.T) {
	_, err := Parse(`
		declare function local:f($a, $b) { $a + $b }
		for $e in collection("c") return local:f($e)`)
	if err == nil || !strings.Contains(err.Error(), "arguments") {
		t.Errorf("expected arity error, got %v", err)
	}
}

func TestDuplicateDeclarationRejected(t *testing.T) {
	_, err := Parse(`
		declare function local:f($a) { $a }
		declare function local:f($a) { $a }
		for $e in collection("c") return local:f($e)`)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("expected duplicate error, got %v", err)
	}
}

func TestUnknownLocalFunctionErrors(t *testing.T) {
	// A local: call without a declaration falls through to an unknown
	// function, caught by the back-ends; the parser accepts the syntax.
	e, err := Parse(`for $x in collection("c") return local:nope($x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(e), "nope(") {
		t.Errorf("call should remain: %s", Format(e))
	}
}

func TestProloglessQueriesUnchanged(t *testing.T) {
	e, err := Parse(`for $x in collection("c") where $x.a gt 1 return $x.b`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*FLWOR); !ok {
		t.Fatalf("top = %T", e)
	}
}
