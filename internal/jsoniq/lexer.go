package jsoniq

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer converts JSONiq source text into a token stream. Comments use the
// XQuery style `(: ... :)` and nest.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Lex tokenizes the whole input, appending a TokEOF.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '(' && lx.peekByteAt(1) == ':':
			depth := 0
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '(' && lx.peekByteAt(1) == ':' {
					depth++
					lx.advance()
					lx.advance()
					continue
				}
				if lx.peekByte() == ':' && lx.peekByteAt(1) == ')' {
					depth--
					lx.advance()
					lx.advance()
					if depth == 0 {
						break
					}
					continue
				}
				lx.advance()
			}
			if depth != 0 {
				return lx.errf("unterminated comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNamePart(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	startLine, startCol := lx.line, lx.col
	mk := func(k TokenKind, text string) Token {
		return Token{Kind: k, Text: text, Line: startLine, Col: startCol}
	}
	if lx.pos >= len(lx.src) {
		return mk(TokEOF, ""), nil
	}
	c := lx.peekByte()
	switch {
	case c == '$':
		lx.advance()
		name, err := lx.lexName()
		if err != nil {
			return Token{}, lx.errf("expected variable name after '$'")
		}
		return mk(TokVariable, name), nil
	case c == '"' || c == '\'':
		s, err := lx.lexString(c)
		if err != nil {
			return Token{}, err
		}
		return mk(TokString, s), nil
	case c >= '0' && c <= '9':
		text, isDec := lx.lexNumber()
		if isDec {
			return mk(TokDecimal, text), nil
		}
		return mk(TokInteger, text), nil
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isNameStart(r) {
		name, _ := lx.lexName()
		return mk(TokName, name), nil
	}
	lx.advance()
	switch c {
	case '{':
		return mk(TokLBrace, "{"), nil
	case '}':
		return mk(TokRBrace, "}"), nil
	case '[':
		if lx.peekByte() == '[' {
			lx.advance()
			return mk(TokLLBracket, "[["), nil
		}
		return mk(TokLBracket, "["), nil
	case ']':
		if lx.peekByte() == ']' {
			lx.advance()
			return mk(TokRRBracket, "]]"), nil
		}
		return mk(TokRBracket, "]"), nil
	case '(':
		return mk(TokLParen, "("), nil
	case ')':
		return mk(TokRParen, ")"), nil
	case ',':
		return mk(TokComma, ","), nil
	case ':':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(TokBind, ":="), nil
		}
		return mk(TokColon, ":"), nil
	case '.':
		return mk(TokDot, "."), nil
	case '+':
		return mk(TokPlus, "+"), nil
	case '-':
		return mk(TokMinus, "-"), nil
	case '*':
		return mk(TokStar, "*"), nil
	case '=':
		return mk(TokEq, "="), nil
	case '!':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(TokNe, "!="), nil
		}
		return Token{}, lx.errf("unexpected '!'")
	case '<':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(TokLe, "<="), nil
		}
		return mk(TokLt, "<"), nil
	case '>':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(TokGe, ">="), nil
		}
		return mk(TokGt, ">"), nil
	case '|':
		if lx.peekByte() == '|' {
			lx.advance()
			return mk(TokConcat, "||"), nil
		}
		return Token{}, lx.errf("unexpected '|'")
	}
	return Token{}, lx.errf("unexpected character %q", string(c))
}

func (lx *lexer) lexName() (string, error) {
	start := lx.pos
	r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if !isNameStart(r) {
		return "", lx.errf("expected name")
	}
	for i := 0; i < size; i++ {
		lx.advance()
	}
	for lx.pos < len(lx.src) {
		r, size = utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isNamePart(r) {
			break
		}
		for i := 0; i < size; i++ {
			lx.advance()
		}
	}
	return lx.src[start:lx.pos], nil
}

func (lx *lexer) lexString(quote byte) (string, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.advance()
		switch c {
		case quote:
			return b.String(), nil
		case '\\':
			if lx.pos >= len(lx.src) {
				return "", lx.errf("unterminated string escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'', '/':
				b.WriteByte(e)
			default:
				return "", lx.errf("unsupported escape \\%c", e)
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", lx.errf("unterminated string literal")
}

// lexNumber consumes digits with optional fraction and exponent. It returns
// the text and whether it is a decimal (non-integer) literal.
func (lx *lexer) lexNumber() (string, bool) {
	start := lx.pos
	isDec := false
	for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
		lx.advance()
	}
	// A '.' only starts a fraction if followed by a digit; otherwise it is
	// field access (e.g. `1 .x` never occurs, but `$v.f` requires TokDot).
	if lx.peekByte() == '.' && lx.peekByteAt(1) >= '0' && lx.peekByteAt(1) <= '9' {
		isDec = true
		lx.advance()
		for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
			lx.advance()
		}
	}
	if c := lx.peekByte(); c == 'e' || c == 'E' {
		next := lx.peekByteAt(1)
		nn := lx.peekByteAt(2)
		if next >= '0' && next <= '9' || ((next == '+' || next == '-') && nn >= '0' && nn <= '9') {
			isDec = true
			lx.advance()
			if c := lx.peekByte(); c == '+' || c == '-' {
				lx.advance()
			}
			for lx.pos < len(lx.src) && lx.peekByte() >= '0' && lx.peekByte() <= '9' {
				lx.advance()
			}
		}
	}
	return lx.src[start:lx.pos], isDec
}
