package jsoniq

import (
	"fmt"
	"strings"

	"jsonpark/internal/variant"
)

// Expr is a node of the JSONiq expression tree. After parsing and rewriting,
// virtually every node corresponds to one JSONiq operation in the query text
// (§III-A2 of the paper).
type Expr interface {
	// Pos returns the source position of the expression.
	Pos() (line, col int)
	exprNode()
}

type pos struct{ Line, Col int }

func (p pos) Pos() (int, int) { return p.Line, p.Col }

// Literal is a constant value (number, string, boolean, null).
type Literal struct {
	pos
	Value variant.Value
}

// VarRef references a FLWOR-bound variable, e.g. `$jet`.
type VarRef struct {
	pos
	Name string
}

// Collection reads a named dataset: `collection("adl")`.
type Collection struct {
	pos
	Name string
}

// FieldAccess is object navigation: `$jet.pt`.
type FieldAccess struct {
	pos
	Base  Expr
	Field string
}

// ArrayUnbox is `$event.Jet[]`: yields each element of the array. In clause
// position (for $x in e[]) it drives iteration; in expression position it is
// the identity on the array (all members).
type ArrayUnbox struct {
	pos
	Base Expr
}

// ArrayIndex is positional lookup `$a[[$i]]` (1-based, JSONiq convention).
type ArrayIndex struct {
	pos
	Base  Expr
	Index Expr
}

// ObjectCtor constructs an object: `{"pt": $jet.pt, "eta": $jet.eta}`.
type ObjectCtor struct {
	pos
	Keys   []string
	Values []Expr
}

// ArrayCtor constructs an array: `[$x, $y]`.
type ArrayCtor struct {
	pos
	Items []Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators. Value and general comparisons are unified (the data
// model is item-based, not sequence-based; see DESIGN.md §5).
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpTo     // integer range a to b
	OpConcat // string concatenation ||
)

var binaryOpNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "div", OpIDiv: "idiv",
	OpMod: "mod", OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le",
	OpGt: "gt", OpGe: "ge", OpAnd: "and", OpOr: "or", OpTo: "to",
	OpConcat: "||",
}

// String returns the JSONiq spelling of the operator.
func (op BinaryOp) String() string { return binaryOpNames[op] }

// Binary applies a binary operator.
type Binary struct {
	pos
	Op    BinaryOp
	Left  Expr
	Right Expr
}

// Unary is arithmetic negation or logical not.
type Unary struct {
	pos
	Op      string // "-" or "not"
	Operand Expr
}

// If is the conditional expression `if (c) then a else b`.
type If struct {
	pos
	Cond Expr
	Then Expr
	Else Expr
}

// FunctionCall invokes a built-in function, e.g. `abs($jet.eta)`.
type FunctionCall struct {
	pos
	Name string
	Args []Expr
}

// FLWOR is the FLWOR expression: a chain of clauses ending in return.
// In expression position a FLWOR produces an array of the returned items
// (the transparent re-aggregation of nested queries, §IV-B).
type FLWOR struct {
	pos
	Clauses []Clause
	Return  Expr
}

// Clause is one FLWOR clause.
type Clause interface {
	Pos() (line, col int)
	clauseNode()
	// Kind returns the clause keyword for diagnostics and iterator naming.
	Kind() string
}

// ForClause binds each item of In to Var; PosVar optionally receives the
// 1-based position (`for $x at $i in ...`). AllowEmpty corresponds to
// `allowing empty` (outer-flatten semantics).
type ForClause struct {
	pos
	Var        string
	PosVar     string
	In         Expr
	AllowEmpty bool
}

// LetClause binds Var to the value of Expr for each incoming tuple.
type LetClause struct {
	pos
	Var  string
	Expr Expr
}

// WhereClause filters tuples.
type WhereClause struct {
	pos
	Cond Expr
}

// GroupKey is one grouping binding: `group by $k := expr` or `group by $k`.
type GroupKey struct {
	Var  string
	Expr Expr // nil means group by the existing variable $Var
}

// GroupByClause groups tuples by its keys. Non-grouping variables become
// arrays of their per-tuple values.
type GroupByClause struct {
	pos
	Keys []GroupKey
}

// OrderKey is one ordering criterion.
type OrderKey struct {
	Expr       Expr
	Descending bool
}

// OrderByClause orders the tuple stream.
type OrderByClause struct {
	pos
	Keys []OrderKey
}

// CountClause binds the 1-based tuple position to Var.
type CountClause struct {
	pos
	Var string
}

func (*Literal) exprNode()      {}
func (*VarRef) exprNode()       {}
func (*Collection) exprNode()   {}
func (*FieldAccess) exprNode()  {}
func (*ArrayUnbox) exprNode()   {}
func (*ArrayIndex) exprNode()   {}
func (*ObjectCtor) exprNode()   {}
func (*ArrayCtor) exprNode()    {}
func (*Binary) exprNode()       {}
func (*Unary) exprNode()        {}
func (*If) exprNode()           {}
func (*FunctionCall) exprNode() {}
func (*FLWOR) exprNode()        {}

func (*ForClause) clauseNode()     {}
func (*LetClause) clauseNode()     {}
func (*WhereClause) clauseNode()   {}
func (*GroupByClause) clauseNode() {}
func (*OrderByClause) clauseNode() {}
func (*CountClause) clauseNode()   {}

func (*ForClause) Kind() string     { return "for" }
func (*LetClause) Kind() string     { return "let" }
func (*WhereClause) Kind() string   { return "where" }
func (*GroupByClause) Kind() string { return "group by" }
func (*OrderByClause) Kind() string { return "order by" }
func (*CountClause) Kind() string   { return "count" }

// Format renders the expression back to JSONiq-like source, for debugging
// and golden tests.
func Format(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Literal:
		b.WriteString(x.Value.JSON())
	case *VarRef:
		b.WriteByte('$')
		b.WriteString(x.Name)
	case *Collection:
		fmt.Fprintf(b, "collection(%q)", x.Name)
	case *FieldAccess:
		formatExpr(b, x.Base)
		b.WriteByte('.')
		b.WriteString(x.Field)
	case *ArrayUnbox:
		formatExpr(b, x.Base)
		b.WriteString("[]")
	case *ArrayIndex:
		formatExpr(b, x.Base)
		b.WriteString("[[")
		formatExpr(b, x.Index)
		b.WriteString("]]")
	case *ObjectCtor:
		b.WriteByte('{')
		for i, k := range x.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%q: ", k)
			formatExpr(b, x.Values[i])
		}
		b.WriteByte('}')
	case *ArrayCtor:
		b.WriteByte('[')
		for i, it := range x.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, it)
		}
		b.WriteByte(']')
	case *Binary:
		b.WriteByte('(')
		formatExpr(b, x.Left)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		formatExpr(b, x.Right)
		b.WriteByte(')')
	case *Unary:
		b.WriteString(x.Op)
		b.WriteByte('(')
		formatExpr(b, x.Operand)
		b.WriteByte(')')
	case *If:
		b.WriteString("if (")
		formatExpr(b, x.Cond)
		b.WriteString(") then ")
		formatExpr(b, x.Then)
		b.WriteString(" else ")
		formatExpr(b, x.Else)
	case *FunctionCall:
		b.WriteString(x.Name)
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteByte(')')
	case *FLWOR:
		b.WriteByte('(')
		for i, c := range x.Clauses {
			if i > 0 {
				b.WriteByte(' ')
			}
			formatClause(b, c)
		}
		b.WriteString(" return ")
		formatExpr(b, x.Return)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

func formatClause(b *strings.Builder, c Clause) {
	switch x := c.(type) {
	case *ForClause:
		fmt.Fprintf(b, "for $%s", x.Var)
		if x.PosVar != "" {
			fmt.Fprintf(b, " at $%s", x.PosVar)
		}
		b.WriteString(" in ")
		formatExpr(b, x.In)
	case *LetClause:
		fmt.Fprintf(b, "let $%s := ", x.Var)
		formatExpr(b, x.Expr)
	case *WhereClause:
		b.WriteString("where ")
		formatExpr(b, x.Cond)
	case *GroupByClause:
		b.WriteString("group by ")
		for i, k := range x.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "$%s", k.Var)
			if k.Expr != nil {
				b.WriteString(" := ")
				formatExpr(b, k.Expr)
			}
		}
	case *OrderByClause:
		b.WriteString("order by ")
		for i, k := range x.Keys {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, k.Expr)
			if k.Descending {
				b.WriteString(" descending")
			}
		}
	case *CountClause:
		fmt.Fprintf(b, "count $%s", x.Var)
	}
}
