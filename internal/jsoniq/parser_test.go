package jsoniq

import (
	"strings"
	"testing"

	"jsonpark/internal/variant"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`for $jet in collection("adl").Jet[] where abs($jet.eta) lt 1 return $jet.pt`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tk := range toks {
		kinds[i] = tk.Kind
	}
	if toks[0].Kind != TokName || toks[0].Text != "for" {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != TokVariable || toks[1].Text != "jet" {
		t.Errorf("tok1 = %v", toks[1])
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex(`1 2.5 1e3 172.5 7`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokenKind{TokInteger, TokDecimal, TokDecimal, TokDecimal, TokInteger, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("tok %d = %v (%q), want %v", i, toks[i].Kind, toks[i].Text, k)
		}
	}
}

func TestLexDotAfterVariableIsFieldAccess(t *testing.T) {
	toks, err := Lex(`$e.pt`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokDot {
		t.Errorf("expected dot, got %v", toks[1])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex(`1 (: a comment (: nested :) still :) 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "1" || toks[1].Text != "2" {
		t.Errorf("tokens = %+v", toks)
	}
	if _, err := Lex(`(: unterminated`); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\"b\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\"b\n" {
		t.Errorf("string = %q", toks[0].Text)
	}
}

func TestLexDoubleBracket(t *testing.T) {
	toks, err := Lex(`$a[[1]] $b[]`)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokVariable, TokLLBracket, TokInteger, TokRRBracket, TokVariable, TokLBracket, TokRBracket, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestParseListing1(t *testing.T) {
	// Simplified ADL Q3 from the paper's Listing 1.
	e, err := Parse(`for $jet in collection("adl").Jet[]
		where abs($jet.eta) lt 1
		return $jet.pt`)
	if err != nil {
		t.Fatal(err)
	}
	fl, ok := e.(*FLWOR)
	if !ok {
		t.Fatalf("top = %T, want FLWOR", e)
	}
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2 (for, where)", len(fl.Clauses))
	}
	fc, ok := fl.Clauses[0].(*ForClause)
	if !ok || fc.Var != "jet" {
		t.Fatalf("clause0 = %#v", fl.Clauses[0])
	}
	unbox, ok := fc.In.(*ArrayUnbox)
	if !ok {
		t.Fatalf("for-in = %T, want ArrayUnbox", fc.In)
	}
	fa, ok := unbox.Base.(*FieldAccess)
	if !ok || fa.Field != "Jet" {
		t.Fatalf("unbox base = %#v", unbox.Base)
	}
	if _, ok := fa.Base.(*Collection); !ok {
		t.Fatalf("field base = %T, want Collection", fa.Base)
	}
	wc, ok := fl.Clauses[1].(*WhereClause)
	if !ok {
		t.Fatalf("clause1 = %T", fl.Clauses[1])
	}
	cmp, ok := wc.Cond.(*Binary)
	if !ok || cmp.Op != OpLt {
		t.Fatalf("where cond = %#v", wc.Cond)
	}
	if _, ok := cmp.Left.(*FunctionCall); !ok {
		t.Fatalf("comparison left = %T, want FunctionCall", cmp.Left)
	}
	if _, ok := fl.Return.(*FieldAccess); !ok {
		t.Fatalf("return = %T", fl.Return)
	}
}

func TestParseNestedFLWORInLet(t *testing.T) {
	// Listing 4 from the paper.
	e, err := Parse(`for $event in collection("adl")
		let $filtered := (
			for $m in $event.Muon[]
			where $m.pt gt 10
			return $m
		)
		return size($filtered)`)
	if err != nil {
		t.Fatal(err)
	}
	fl := e.(*FLWOR)
	let, ok := fl.Clauses[1].(*LetClause)
	if !ok {
		t.Fatalf("clause1 = %T", fl.Clauses[1])
	}
	if _, ok := let.Expr.(*FLWOR); !ok {
		t.Fatalf("let expr = %T, want nested FLWOR", let.Expr)
	}
}

func TestParseGroupByOrderBy(t *testing.T) {
	e, err := Parse(`for $e in collection("adl")
		group by $bin := floor($e.MET.pt div 20)
		order by $bin descending
		return {"bin": $bin, "n": count($e)}`)
	if err != nil {
		t.Fatal(err)
	}
	fl := e.(*FLWOR)
	gb, ok := fl.Clauses[1].(*GroupByClause)
	if !ok || len(gb.Keys) != 1 || gb.Keys[0].Var != "bin" || gb.Keys[0].Expr == nil {
		t.Fatalf("group by = %#v", fl.Clauses[1])
	}
	ob, ok := fl.Clauses[2].(*OrderByClause)
	if !ok || !ob.Keys[0].Descending {
		t.Fatalf("order by = %#v", fl.Clauses[2])
	}
	ret, ok := fl.Return.(*ObjectCtor)
	if !ok || len(ret.Keys) != 2 || ret.Keys[0] != "bin" {
		t.Fatalf("return = %#v", fl.Return)
	}
}

func TestParseMultipleForBindings(t *testing.T) {
	e, err := Parse(`for $l in collection("lineorder"), $d in collection("date")
		where $l.lo_orderdate eq $d.d_datekey
		return $l.lo_revenue`)
	if err != nil {
		t.Fatal(err)
	}
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(fl.Clauses))
	}
	if fl.Clauses[0].Kind() != "for" || fl.Clauses[1].Kind() != "for" {
		t.Fatal("expected two for clauses")
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := Parse(`1 + 2 * 3 eq 7 and true`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top = %#v, want and", e)
	}
	cmp := and.Left.(*Binary)
	if cmp.Op != OpEq {
		t.Fatalf("left of and = %v", cmp.Op)
	}
	add := cmp.Left.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("left of eq = %v", add.Op)
	}
	mul := add.Right.(*Binary)
	if mul.Op != OpMul {
		t.Fatalf("right of add = %v", mul.Op)
	}
}

func TestParseRangeAndPositional(t *testing.T) {
	e, err := Parse(`for $i in 1 to size($jets) return $jets[[$i]]`)
	if err != nil {
		t.Fatal(err)
	}
	fl := e.(*FLWOR)
	fc := fl.Clauses[0].(*ForClause)
	rng, ok := fc.In.(*Binary)
	if !ok || rng.Op != OpTo {
		t.Fatalf("for-in = %#v", fc.In)
	}
	if _, ok := fl.Return.(*ArrayIndex); !ok {
		t.Fatalf("return = %T, want ArrayIndex", fl.Return)
	}
}

func TestParseIfAndUnary(t *testing.T) {
	e, err := Parse(`if ($x gt 0) then -$x else not $y`)
	if err != nil {
		t.Fatal(err)
	}
	iff, ok := e.(*If)
	if !ok {
		t.Fatalf("top = %T", e)
	}
	if u, ok := iff.Then.(*Unary); !ok || u.Op != "-" {
		t.Fatalf("then = %#v", iff.Then)
	}
	if u, ok := iff.Else.(*Unary); !ok || u.Op != "not" {
		t.Fatalf("else = %#v", iff.Else)
	}
}

func TestParseAtPositionVar(t *testing.T) {
	e, err := Parse(`for $j at $i in $jets[] return $i`)
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*FLWOR).Clauses[0].(*ForClause)
	if fc.PosVar != "i" {
		t.Errorf("pos var = %q", fc.PosVar)
	}
}

func TestParseCountClauseVsCountFunction(t *testing.T) {
	e, err := Parse(`for $x in $xs[] count $c return $c`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*FLWOR).Clauses[1].(*CountClause); !ok {
		t.Fatalf("clause1 = %T", e.(*FLWOR).Clauses[1])
	}
	e2, err := Parse(`count($xs)`)
	if err != nil {
		t.Fatal(err)
	}
	if fc, ok := e2.(*FunctionCall); !ok || fc.Name != "count" {
		t.Fatalf("top = %#v", e2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x return $x`,           // missing in
		`for $x in $y`,               // missing return
		`{pt: }`,                     // missing value
		`$a[$x gt 1]`,                // predicates unsupported
		`1 +`,                        // dangling operator
		`"unterminated`,              // bad string
		`collection($x)`,             // non-literal collection
		`for $x in (1,2) return $x)`, // trailing paren
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("for $x in\n  !bad return $x")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`for $jet in collection("adl").Jet[] where (abs($jet.eta) lt 1) return $jet.pt`,
		`{"a": [1, 2.5], "b": (if ($x gt 0) then 1 else 2)}`,
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Format(e1)
		e2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		if Format(e2) != text {
			t.Errorf("format not stable:\n%s\n%s", text, Format(e2))
		}
	}
}

func TestRewriteConstantFolding(t *testing.T) {
	e := Rewrite(MustParse(`1 + 2 * 3`))
	lit, ok := e.(*Literal)
	if !ok || lit.Value.AsInt() != 7 {
		t.Fatalf("folded = %v", Format(e))
	}
	e = Rewrite(MustParse(`if (1 lt 2) then "a" else "b"`))
	lit, ok = e.(*Literal)
	if !ok || lit.Value.AsString() != "a" {
		t.Fatalf("folded if = %v", Format(e))
	}
	e = Rewrite(MustParse(`$x and false`))
	lit, ok = e.(*Literal)
	if !ok || lit.Value.Truthy() {
		t.Fatalf("x and false should fold to false, got %v", Format(e))
	}
	e = Rewrite(MustParse(`$x or false`))
	if _, ok := e.(*VarRef); !ok {
		t.Fatalf("x or false should fold to $x, got %v", Format(e))
	}
}

func TestRewriteDeadLetElimination(t *testing.T) {
	e := Rewrite(MustParse(`for $x in $xs[] let $unused := $x.a let $used := $x.b return $used`))
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses after rewrite = %d, want 2 (for + used let)", len(fl.Clauses))
	}
	for _, c := range fl.Clauses {
		if lc, ok := c.(*LetClause); ok && lc.Var == "unused" {
			t.Error("dead let not eliminated")
		}
	}
}

func TestRewriteKeepsLetUsedByLaterClause(t *testing.T) {
	e := Rewrite(MustParse(`for $x in $xs[] let $a := $x.v where $a gt 1 return $x`))
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3", len(fl.Clauses))
	}
}

func TestParseEmptySequence(t *testing.T) {
	e, err := Parse(`()`)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := e.(*ArrayCtor)
	if !ok || len(a.Items) != 0 {
		t.Fatalf("() = %#v", e)
	}
}

func TestParseLiteralKinds(t *testing.T) {
	cases := map[string]variant.Kind{
		`1`: variant.KindInt, `2.5`: variant.KindFloat, `"s"`: variant.KindString,
		`true`: variant.KindBool, `null`: variant.KindNull,
	}
	for src, kind := range cases {
		e := MustParse(src)
		lit, ok := e.(*Literal)
		if !ok || lit.Value.Kind() != kind {
			t.Errorf("Parse(%s) = %#v, want literal of %v", src, e, kind)
		}
	}
}

func TestWalkVisitsFLWORChildren(t *testing.T) {
	e := MustParse(`for $x in collection("c") where $x.a gt 1 order by $x.b return {"v": $x.a}`)
	var names []string
	Walk(e, func(n Expr) bool {
		if f, ok := n.(*FieldAccess); ok {
			names = append(names, f.Field)
		}
		return true
	})
	joined := strings.Join(names, ",")
	for _, want := range []string{"a", "b"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Walk missed field %q (saw %s)", want, joined)
		}
	}
}
