package jsoniq

import (
	"fmt"
	"strconv"

	"jsonpark/internal/obsv"
	"jsonpark/internal/variant"
)

// Parse parses a JSONiq query — an optional prolog of function declarations
// followed by the main expression — and returns the expression tree with
// every user-function call inlined.
func Parse(src string) (Expr, error) {
	return ParseTraced(src, nil)
}

// ParseTraced is Parse reporting into a span tree: children jsoniq.lex
// (with a token-count attribute), jsoniq.parse and jsoniq.inline hang off
// the given parent. A nil span disables tracing at zero cost.
func ParseTraced(src string, sp *obsv.Span) (Expr, error) {
	m, err := ParseModuleTraced(src, sp)
	if err != nil {
		return nil, err
	}
	isp := sp.Child("jsoniq.inline")
	defer isp.End()
	return m.Inline()
}

// MustParse is Parse that panics on error; for tests and embedded queries.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.peek().Kind != k {
		return Token{}, p.errf("expected %s, found %s %q", k, p.peek().Kind, p.peek().Text)
	}
	return p.advance(), nil
}

// isKeyword reports whether the current token is the given bare name.
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokName && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %q, found %s %q", kw, p.peek().Kind, p.peek().Text)
	}
	return nil
}

func at(t Token) pos { return pos{Line: t.Line, Col: t.Col} }

// parseExpr parses either a FLWOR expression or an operator expression.
func (p *parser) parseExpr() (Expr, error) {
	if p.isKeyword("for") || p.isKeyword("let") {
		return p.parseFLWOR()
	}
	if p.isKeyword("if") && p.peekAt(1).Kind == TokLParen {
		return p.parseIf()
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (Expr, error) {
	start := p.peek()
	var clauses []Clause
	for {
		switch {
		case p.isKeyword("for"):
			p.advance()
			for {
				cl, err := p.parseForBinding()
				if err != nil {
					return nil, err
				}
				clauses = append(clauses, cl)
				if p.peek().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
		case p.isKeyword("let"):
			p.advance()
			for {
				cl, err := p.parseLetBinding()
				if err != nil {
					return nil, err
				}
				clauses = append(clauses, cl)
				if p.peek().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
		case p.isKeyword("where"):
			tok := p.advance()
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			clauses = append(clauses, &WhereClause{pos: at(tok), Cond: cond})
		case p.isKeyword("group"):
			tok := p.advance()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			gb := &GroupByClause{pos: at(tok)}
			for {
				vt, err := p.expect(TokVariable)
				if err != nil {
					return nil, err
				}
				key := GroupKey{Var: vt.Text}
				if p.peek().Kind == TokBind {
					p.advance()
					key.Expr, err = p.parseExprSingle()
					if err != nil {
						return nil, err
					}
				}
				gb.Keys = append(gb.Keys, key)
				if p.peek().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			clauses = append(clauses, gb)
		case p.isKeyword("order"):
			tok := p.advance()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			ob := &OrderByClause{pos: at(tok)}
			for {
				e, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				key := OrderKey{Expr: e}
				if p.acceptKeyword("descending") {
					key.Descending = true
				} else {
					p.acceptKeyword("ascending")
				}
				ob.Keys = append(ob.Keys, key)
				if p.peek().Kind == TokComma {
					p.advance()
					continue
				}
				break
			}
			clauses = append(clauses, ob)
		case p.isKeyword("count"):
			// `count` is also a function name; only treat it as a clause when
			// followed by a variable.
			if p.peekAt(1).Kind != TokVariable {
				return nil, p.errf("expected clause keyword")
			}
			tok := p.advance()
			vt, _ := p.expect(TokVariable)
			clauses = append(clauses, &CountClause{pos: at(tok), Var: vt.Text})
		case p.isKeyword("return"):
			p.advance()
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			return &FLWOR{pos: at(start), Clauses: clauses, Return: ret}, nil
		default:
			return nil, p.errf("expected FLWOR clause or 'return', found %s %q", p.peek().Kind, p.peek().Text)
		}
	}
}

func (p *parser) parseForBinding() (Clause, error) {
	vt, err := p.expect(TokVariable)
	if err != nil {
		return nil, err
	}
	cl := &ForClause{pos: at(vt), Var: vt.Text}
	if p.acceptKeyword("allowing") {
		if err := p.expectKeyword("empty"); err != nil {
			return nil, err
		}
		cl.AllowEmpty = true
	}
	if p.acceptKeyword("at") {
		pt, err := p.expect(TokVariable)
		if err != nil {
			return nil, err
		}
		cl.PosVar = pt.Text
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	cl.In, err = p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return cl, nil
}

func (p *parser) parseLetBinding() (Clause, error) {
	vt, err := p.expect(TokVariable)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokBind); err != nil {
		return nil, err
	}
	e, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &LetClause{pos: at(vt), Var: vt.Text, Expr: e}, nil
}

// parseExprSingle parses one expression without top-level comma sequencing
// (commas separate clause bindings and constructor members).
func (p *parser) parseExprSingle() (Expr, error) {
	if p.isKeyword("for") || p.isKeyword("let") {
		return p.parseFLWOR()
	}
	if p.isKeyword("if") && p.peekAt(1).Kind == TokLParen {
		return p.parseIf()
	}
	return p.parseOr()
}

func (p *parser) parseIf() (Expr, error) {
	tok := p.advance() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &If{pos: at(tok), Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		tok := p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{pos: at(tok), Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		tok := p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{pos: at(tok), Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	// `not` followed by '(' is the fn:not call handled by parsePostfix; the
	// keyword form `not expr` is also accepted.
	if p.isKeyword("not") && p.peekAt(1).Kind != TokLParen {
		tok := p.advance()
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: at(tok), Op: "not", Operand: operand}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"eq": OpEq, "ne": OpNe, "lt": OpLt, "le": OpLe, "gt": OpGt, "ge": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	var op BinaryOp
	found := false
	t := p.peek()
	switch t.Kind {
	case TokEq:
		op, found = OpEq, true
	case TokNe:
		op, found = OpNe, true
	case TokLt:
		op, found = OpLt, true
	case TokLe:
		op, found = OpLe, true
	case TokGt:
		op, found = OpGt, true
	case TokGe:
		op, found = OpGe, true
	case TokName:
		if o, ok := comparisonOps[t.Text]; ok {
			op, found = o, true
		}
	}
	if !found {
		return left, nil
	}
	tok := p.advance()
	right, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	return &Binary{pos: at(tok), Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseConcat() (Expr, error) {
	left, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokConcat {
		tok := p.advance()
		right, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		left = &Binary{pos: at(tok), Op: OpConcat, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseRange() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("to") {
		tok := p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{pos: at(tok), Op: OpTo, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peek().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return left, nil
		}
		tok := p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{pos: at(tok), Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peek().Kind == TokStar:
			op = OpMul
		case p.isKeyword("div"):
			op = OpDiv
		case p.isKeyword("idiv"):
			op = OpIDiv
		case p.isKeyword("mod"):
			op = OpMod
		default:
			return left, nil
		}
		tok := p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{pos: at(tok), Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().Kind {
	case TokMinus:
		tok := p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{pos: at(tok), Op: "-", Operand: operand}, nil
	case TokPlus:
		p.advance()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokDot:
			p.advance()
			t := p.peek()
			var field string
			switch t.Kind {
			case TokName:
				field = p.advance().Text
			case TokString:
				field = p.advance().Text
			default:
				return nil, p.errf("expected field name after '.'")
			}
			e = &FieldAccess{pos: at(t), Base: e, Field: field}
		case TokLBracket:
			tok := p.advance()
			if p.peek().Kind == TokRBracket {
				p.advance()
				e = &ArrayUnbox{pos: at(tok), Base: e}
				continue
			}
			return nil, p.errf("sequence predicates '[expr]' are not supported; use a nested FLWOR or '[[i]]' positional lookup")
		case TokLLBracket:
			tok := p.advance()
			idx, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRRBracket); err != nil {
				return nil, err
			}
			e = &ArrayIndex{pos: at(tok), Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

// reservedAfterExpr lists keywords that must never be parsed as a function
// call or literal when they appear where a clause keyword is expected.
var reservedNames = map[string]bool{
	"for": true, "let": true, "where": true, "group": true, "order": true,
	"return": true, "in": true, "at": true, "if": true, "then": true,
	"else": true, "and": true, "or": true, "to": true, "div": true,
	"idiv": true, "mod": true, "ascending": true, "descending": true,
	"by": true, "allowing": true, "empty": true,
	"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInteger:
		p.advance()
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return &Literal{pos: at(t), Value: variant.Int(i)}, nil
	case TokDecimal:
		p.advance()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad decimal literal %q", t.Text)
		}
		return &Literal{pos: at(t), Value: variant.Float(f)}, nil
	case TokString:
		p.advance()
		return &Literal{pos: at(t), Value: variant.String(t.Text)}, nil
	case TokVariable:
		p.advance()
		return &VarRef{pos: at(t), Name: t.Text}, nil
	case TokLParen:
		p.advance()
		if p.peek().Kind == TokRParen {
			// Empty sequence: the item model maps it to an empty array.
			p.advance()
			return &ArrayCtor{pos: at(t)}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		return p.parseObjectCtor()
	case TokLBracket:
		return p.parseArrayCtor()
	case TokName:
		switch t.Text {
		case "true":
			p.advance()
			return &Literal{pos: at(t), Value: variant.Bool(true)}, nil
		case "false":
			p.advance()
			return &Literal{pos: at(t), Value: variant.Bool(false)}, nil
		case "null":
			p.advance()
			return &Literal{pos: at(t), Value: variant.Null}, nil
		}
		if t.Text == "local" && p.peekAt(1).Kind == TokColon &&
			p.peekAt(2).Kind == TokName && p.peekAt(3).Kind == TokLParen {
			p.advance() // local
			p.advance() // :
			return p.parseFunctionCall()
		}
		if p.peekAt(1).Kind == TokLParen && (!reservedNames[t.Text] || t.Text == "empty") {
			return p.parseFunctionCall()
		}
		return nil, p.errf("unexpected name %q", t.Text)
	}
	return nil, p.errf("unexpected %s %q", t.Kind, t.Text)
}

func (p *parser) parseFunctionCall() (Expr, error) {
	nameTok := p.advance()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	call := &FunctionCall{pos: at(nameTok), Name: nameTok.Text}
	if p.peek().Kind != TokRParen {
		for {
			a, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.peek().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if call.Name == "collection" {
		if len(call.Args) != 1 {
			return nil, p.errf("collection() takes exactly one string argument")
		}
		lit, ok := call.Args[0].(*Literal)
		if !ok || lit.Value.Kind() != variant.KindString {
			return nil, p.errf("collection() requires a string literal argument")
		}
		return &Collection{pos: at(nameTok), Name: lit.Value.AsString()}, nil
	}
	return call, nil
}

func (p *parser) parseObjectCtor() (Expr, error) {
	start, _ := p.expect(TokLBrace)
	o := &ObjectCtor{pos: at(start)}
	if p.peek().Kind == TokRBrace {
		p.advance()
		return o, nil
	}
	for {
		t := p.peek()
		var key string
		switch t.Kind {
		case TokString:
			key = p.advance().Text
		case TokName:
			key = p.advance().Text
		default:
			return nil, p.errf("expected object key, found %s", t.Kind)
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		v, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		o.Keys = append(o.Keys, key)
		o.Values = append(o.Values, v)
		if p.peek().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return o, nil
}

func (p *parser) parseArrayCtor() (Expr, error) {
	start, _ := p.expect(TokLBracket)
	a := &ArrayCtor{pos: at(start)}
	if p.peek().Kind == TokRBracket {
		p.advance()
		return a, nil
	}
	for {
		it, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		a.Items = append(a.Items, it)
		if p.peek().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return a, nil
}
