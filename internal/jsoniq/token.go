// Package jsoniq implements the JSONiq frontend: a lexer, a recursive-descent
// parser producing an AST, and expression-tree rewrites. The supported subset
// covers the FLWOR expression set (for, let, where, group by, order by,
// count, return), object/array constructors, nested-data navigation
// (field access, array unboxing, positional lookup), arithmetic, value
// comparisons, logic, conditionals, ranges and built-in function calls —
// the constructs exercised by the ADL and SSB workloads and by the paper's
// translation patterns (§II-E, §IV).
package jsoniq

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF       TokenKind = iota
	TokName                // identifier or keyword
	TokVariable            // $name
	TokString              // "..."
	TokInteger             // 123
	TokDecimal             // 1.5, 1e3
	TokLBrace              // {
	TokRBrace              // }
	TokLBracket            // [
	TokRBracket            // ]
	TokLLBracket           // [[
	TokRRBracket           // ]]
	TokLParen              // (
	TokRParen              // )
	TokComma               // ,
	TokColon               // :
	TokBind                // :=
	TokDot                 // .
	TokPlus                // +
	TokMinus               // -
	TokStar                // *
	TokBang                // ! (only as part of !=)
	TokEq                  // =
	TokNe                  // !=
	TokLt                  // <
	TokLe                  // <=
	TokGt                  // >
	TokGe                  // >=
	TokConcat              // ||
)

var tokenNames = map[TokenKind]string{
	TokEOF: "end of input", TokName: "name", TokVariable: "variable",
	TokString: "string literal", TokInteger: "integer literal",
	TokDecimal: "decimal literal", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokLLBracket: "'[['",
	TokRRBracket: "']]'", TokLParen: "'('", TokRParen: "')'",
	TokComma: "','", TokColon: "':'", TokBind: "':='", TokDot: "'.'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokBang: "'!'",
	TokEq: "'='", TokNe: "'!='", TokLt: "'<'", TokLe: "'<='",
	TokGt: "'>'", TokGe: "'>='", TokConcat: "'||'",
}

// String returns a human-readable token-kind name for error messages.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with its source position (1-based line/column).
type Token struct {
	Kind TokenKind
	Text string // name text, variable name (without $), string value, number text
	Line int
	Col  int
}

// SyntaxError reports a lexing or parsing failure with source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsoniq: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}
