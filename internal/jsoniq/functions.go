package jsoniq

import (
	"fmt"
	"strconv"

	"jsonpark/internal/obsv"
)

// FunctionDecl is one user-declared function from the query prolog:
//
//	declare function local:name($a, $b) { expr };
type FunctionDecl struct {
	Name   string // without the local: prefix
	Params []string
	Body   Expr
}

// Module is a parsed query: prolog function declarations plus the main
// expression. Inline() folds the declarations away, mirroring RumbleDB's
// function-inlining rewrite (§III-A2 of the paper); recursive functions are
// rejected, the paper's stated limitation (§IV-E).
type Module struct {
	Functions []FunctionDecl
	Body      Expr
}

// ParseModule parses a query with an optional prolog.
func ParseModule(src string) (*Module, error) {
	return ParseModuleTraced(src, nil)
}

// ParseModuleTraced is ParseModule with lex and parse stage spans.
func ParseModuleTraced(src string, sp *obsv.Span) (*Module, error) {
	lsp := sp.Child("jsoniq.lex")
	toks, err := Lex(src)
	lsp.SetAttr("tokens", len(toks))
	lsp.End()
	if err != nil {
		return nil, err
	}
	psp := sp.Child("jsoniq.parse")
	defer psp.End()
	p := &parser{toks: toks}
	m := &Module{}
	for p.isKeyword("declare") {
		decl, err := p.parseFunctionDecl()
		if err != nil {
			return nil, err
		}
		m.Functions = append(m.Functions, decl)
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after end of query", p.peek().Kind)
	}
	m.Body = e
	return m, nil
}

func (p *parser) parseFunctionDecl() (FunctionDecl, error) {
	p.advance() // declare
	if err := p.expectKeyword("function"); err != nil {
		return FunctionDecl{}, err
	}
	// Accept `local:name` or a bare name.
	nameTok, err := p.expect(TokName)
	if err != nil {
		return FunctionDecl{}, err
	}
	name := nameTok.Text
	if name == "local" && p.peek().Kind == TokColon {
		p.advance()
		nt, err := p.expect(TokName)
		if err != nil {
			return FunctionDecl{}, err
		}
		name = nt.Text
	}
	if _, err := p.expect(TokLParen); err != nil {
		return FunctionDecl{}, err
	}
	var params []string
	if p.peek().Kind != TokRParen {
		for {
			vt, err := p.expect(TokVariable)
			if err != nil {
				return FunctionDecl{}, err
			}
			params = append(params, vt.Text)
			if p.peek().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return FunctionDecl{}, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return FunctionDecl{}, err
	}
	body, err := p.parseExprSingle()
	if err != nil {
		return FunctionDecl{}, err
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return FunctionDecl{}, err
	}
	// Optional trailing ';' is not a token in this lexer; declarations are
	// brace-delimited instead.
	return FunctionDecl{Name: name, Params: params, Body: body}, nil
}

// Inline substitutes every user-function call with its body (arguments
// replacing parameters, bound variables freshly renamed to avoid capture)
// and returns the closed main expression. Recursive or unknown-arity calls
// are errors.
func (m *Module) Inline() (Expr, error) {
	decls := make(map[string]FunctionDecl, len(m.Functions))
	for _, d := range m.Functions {
		if _, dup := decls[d.Name]; dup {
			return nil, fmt.Errorf("jsoniq: function %s declared twice", d.Name)
		}
		decls[d.Name] = d
	}
	in := &inliner{decls: decls}
	return in.expr(m.Body, nil)
}

type inliner struct {
	decls  map[string]FunctionDecl
	fresh  int
	active []string // call stack for recursion detection
}

func (in *inliner) expr(e Expr, subst map[string]Expr) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Literal, *Collection:
		return e, nil
	case *VarRef:
		if subst != nil {
			if repl, ok := subst[x.Name]; ok {
				return repl, nil
			}
		}
		return e, nil
	case *FieldAccess:
		base, err := in.expr(x.Base, subst)
		if err != nil {
			return nil, err
		}
		return &FieldAccess{pos: x.pos, Base: base, Field: x.Field}, nil
	case *ArrayUnbox:
		base, err := in.expr(x.Base, subst)
		if err != nil {
			return nil, err
		}
		return &ArrayUnbox{pos: x.pos, Base: base}, nil
	case *ArrayIndex:
		base, err := in.expr(x.Base, subst)
		if err != nil {
			return nil, err
		}
		idx, err := in.expr(x.Index, subst)
		if err != nil {
			return nil, err
		}
		return &ArrayIndex{pos: x.pos, Base: base, Index: idx}, nil
	case *ObjectCtor:
		out := &ObjectCtor{pos: x.pos, Keys: x.Keys}
		for _, v := range x.Values {
			nv, err := in.expr(v, subst)
			if err != nil {
				return nil, err
			}
			out.Values = append(out.Values, nv)
		}
		return out, nil
	case *ArrayCtor:
		out := &ArrayCtor{pos: x.pos}
		for _, v := range x.Items {
			nv, err := in.expr(v, subst)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, nv)
		}
		return out, nil
	case *Binary:
		l, err := in.expr(x.Left, subst)
		if err != nil {
			return nil, err
		}
		r, err := in.expr(x.Right, subst)
		if err != nil {
			return nil, err
		}
		return &Binary{pos: x.pos, Op: x.Op, Left: l, Right: r}, nil
	case *Unary:
		o, err := in.expr(x.Operand, subst)
		if err != nil {
			return nil, err
		}
		return &Unary{pos: x.pos, Op: x.Op, Operand: o}, nil
	case *If:
		cond, err := in.expr(x.Cond, subst)
		if err != nil {
			return nil, err
		}
		then, err := in.expr(x.Then, subst)
		if err != nil {
			return nil, err
		}
		els, err := in.expr(x.Else, subst)
		if err != nil {
			return nil, err
		}
		return &If{pos: x.pos, Cond: cond, Then: then, Else: els}, nil
	case *FunctionCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := in.expr(a, subst)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		decl, isUser := in.decls[x.Name]
		if !isUser {
			return &FunctionCall{pos: x.pos, Name: x.Name, Args: args}, nil
		}
		for _, active := range in.active {
			if active == x.Name {
				return nil, fmt.Errorf("jsoniq: recursive functions are not supported (cycle through %s)", x.Name)
			}
		}
		if len(args) != len(decl.Params) {
			return nil, fmt.Errorf("jsoniq: %s expects %d arguments, got %d", x.Name, len(decl.Params), len(args))
		}
		// Alpha-rename the body's bound variables, bind parameters to the
		// (already inlined) argument expressions, then inline the body
		// itself so nested user-function calls resolve too.
		body := in.renameBound(decl.Body)
		paramSubst := make(map[string]Expr, len(args))
		for i, p := range decl.Params {
			paramSubst[p] = args[i]
		}
		in.active = append(in.active, x.Name)
		out, err := in.expr(body, paramSubst)
		in.active = in.active[:len(in.active)-1]
		return out, err
	case *FLWOR:
		out := &FLWOR{pos: x.pos}
		for _, c := range x.Clauses {
			nc, err := in.clause(c, subst)
			if err != nil {
				return nil, err
			}
			out.Clauses = append(out.Clauses, nc)
		}
		ret, err := in.expr(x.Return, subst)
		if err != nil {
			return nil, err
		}
		out.Return = ret
		return out, nil
	}
	return nil, fmt.Errorf("jsoniq: cannot inline through %T", e)
}

func (in *inliner) clause(c Clause, subst map[string]Expr) (Clause, error) {
	switch cl := c.(type) {
	case *ForClause:
		e, err := in.expr(cl.In, subst)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.In = e
		return &out, nil
	case *LetClause:
		e, err := in.expr(cl.Expr, subst)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.Expr = e
		return &out, nil
	case *WhereClause:
		e, err := in.expr(cl.Cond, subst)
		if err != nil {
			return nil, err
		}
		out := *cl
		out.Cond = e
		return &out, nil
	case *GroupByClause:
		out := &GroupByClause{pos: cl.pos}
		for _, k := range cl.Keys {
			nk := k
			if k.Expr != nil {
				e, err := in.expr(k.Expr, subst)
				if err != nil {
					return nil, err
				}
				nk.Expr = e
			}
			out.Keys = append(out.Keys, nk)
		}
		return out, nil
	case *OrderByClause:
		out := &OrderByClause{pos: cl.pos}
		for _, k := range cl.Keys {
			e, err := in.expr(k.Expr, subst)
			if err != nil {
				return nil, err
			}
			out.Keys = append(out.Keys, OrderKey{Expr: e, Descending: k.Descending})
		}
		return out, nil
	case *CountClause:
		out := *cl
		return &out, nil
	}
	return nil, fmt.Errorf("jsoniq: cannot inline through clause %T", c)
}

// renameBound rewrites every variable bound inside the body (by for, let,
// group by or count clauses) to a fresh name, preventing capture of caller
// variables passed in argument expressions.
func (in *inliner) renameBound(e Expr) Expr {
	renames := map[string]string{}
	var walkE func(Expr) Expr
	var walkC func(Clause) Clause
	rename := func(name string) string {
		if nn, ok := renames[name]; ok {
			return nn
		}
		in.fresh++
		nn := name + "#inl" + strconv.Itoa(in.fresh)
		renames[name] = nn
		return nn
	}
	ref := func(name string) string {
		if nn, ok := renames[name]; ok {
			return nn
		}
		return name
	}
	walkC = func(c Clause) Clause {
		switch cl := c.(type) {
		case *ForClause:
			out := *cl
			out.In = walkE(cl.In) // bindings scope over later clauses only
			out.Var = rename(cl.Var)
			if cl.PosVar != "" {
				out.PosVar = rename(cl.PosVar)
			}
			return &out
		case *LetClause:
			out := *cl
			out.Expr = walkE(cl.Expr)
			out.Var = rename(cl.Var)
			return &out
		case *WhereClause:
			out := *cl
			out.Cond = walkE(cl.Cond)
			return &out
		case *GroupByClause:
			out := &GroupByClause{pos: cl.pos}
			for _, k := range cl.Keys {
				nk := k
				if k.Expr != nil {
					nk.Expr = walkE(k.Expr)
				}
				nk.Var = rename(k.Var)
				out.Keys = append(out.Keys, nk)
			}
			return out
		case *OrderByClause:
			out := &OrderByClause{pos: cl.pos}
			for _, k := range cl.Keys {
				out.Keys = append(out.Keys, OrderKey{Expr: walkE(k.Expr), Descending: k.Descending})
			}
			return out
		case *CountClause:
			out := *cl
			out.Var = rename(cl.Var)
			return &out
		}
		return c
	}
	walkE = func(e Expr) Expr {
		switch x := e.(type) {
		case nil:
			return nil
		case *Literal, *Collection:
			return e
		case *VarRef:
			return &VarRef{pos: x.pos, Name: ref(x.Name)}
		case *FieldAccess:
			return &FieldAccess{pos: x.pos, Base: walkE(x.Base), Field: x.Field}
		case *ArrayUnbox:
			return &ArrayUnbox{pos: x.pos, Base: walkE(x.Base)}
		case *ArrayIndex:
			return &ArrayIndex{pos: x.pos, Base: walkE(x.Base), Index: walkE(x.Index)}
		case *ObjectCtor:
			out := &ObjectCtor{pos: x.pos, Keys: x.Keys}
			for _, v := range x.Values {
				out.Values = append(out.Values, walkE(v))
			}
			return out
		case *ArrayCtor:
			out := &ArrayCtor{pos: x.pos}
			for _, v := range x.Items {
				out.Items = append(out.Items, walkE(v))
			}
			return out
		case *Binary:
			return &Binary{pos: x.pos, Op: x.Op, Left: walkE(x.Left), Right: walkE(x.Right)}
		case *Unary:
			return &Unary{pos: x.pos, Op: x.Op, Operand: walkE(x.Operand)}
		case *If:
			return &If{pos: x.pos, Cond: walkE(x.Cond), Then: walkE(x.Then), Else: walkE(x.Else)}
		case *FunctionCall:
			out := &FunctionCall{pos: x.pos, Name: x.Name}
			for _, a := range x.Args {
				out.Args = append(out.Args, walkE(a))
			}
			return out
		case *FLWOR:
			out := &FLWOR{pos: x.pos}
			for _, c := range x.Clauses {
				out.Clauses = append(out.Clauses, walkC(c))
			}
			out.Return = walkE(x.Return)
			return out
		}
		return e
	}
	return walkE(e)
}
