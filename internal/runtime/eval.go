package runtime

import (
	"fmt"
	"math"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/variant"
)

// eval computes an expression against one tuple. Nested FLWOR expressions
// evaluate to arrays of their returned items (the item-based sequence model,
// matching the translation's transparent re-aggregation of §IV-B).
func (e *Engine) eval(expr jsoniq.Expr, t tuple) (variant.Value, error) {
	switch x := expr.(type) {
	case *jsoniq.Literal:
		return x.Value, nil
	case *jsoniq.VarRef:
		v, ok := t[x.Name]
		if !ok {
			return variant.Null, fmt.Errorf("runtime: unbound variable $%s", x.Name)
		}
		return v, nil
	case *jsoniq.Collection:
		docs, err := e.scanCollection(x.Name)
		if err != nil {
			return variant.Null, err
		}
		return variant.ArrayOf(docs), nil
	case *jsoniq.FieldAccess:
		base, err := e.eval(x.Base, t)
		if err != nil {
			return variant.Null, err
		}
		// Field access maps over arrays, mirroring JSONiq's sequence-mapped
		// object lookup: group by binds non-grouping variables to sequences
		// (modeled as arrays here), and $l.lo_revenue must yield the
		// sequence of member fields.
		if base.Kind() == variant.KindArray {
			out := make([]variant.Value, 0, base.Len())
			for _, el := range base.AsArray() {
				if el.Kind() == variant.KindObject {
					out = append(out, el.Field(x.Field))
				}
			}
			return variant.ArrayOf(out), nil
		}
		return base.Field(x.Field), nil
	case *jsoniq.ArrayUnbox:
		// In expression position the unboxed members behave as the array.
		return e.eval(x.Base, t)
	case *jsoniq.ArrayIndex:
		base, err := e.eval(x.Base, t)
		if err != nil {
			return variant.Null, err
		}
		idx, err := e.eval(x.Index, t)
		if err != nil {
			return variant.Null, err
		}
		if idx.IsNull() || !idx.IsNumber() {
			return variant.Null, nil
		}
		i, err := variant.ToInt(idx)
		if err != nil {
			return variant.Null, err
		}
		return base.Index(int(i - 1)), nil // JSONiq positions are 1-based
	case *jsoniq.ObjectCtor:
		o := variant.NewObject()
		for i, k := range x.Keys {
			v, err := e.eval(x.Values[i], t)
			if err != nil {
				return variant.Null, err
			}
			o.Set(k, v)
		}
		return variant.ObjectValue(o), nil
	case *jsoniq.ArrayCtor:
		items := make([]variant.Value, len(x.Items))
		for i, it := range x.Items {
			v, err := e.eval(it, t)
			if err != nil {
				return variant.Null, err
			}
			items[i] = v
		}
		return variant.ArrayOf(items), nil
	case *jsoniq.Binary:
		return e.evalBinary(x, t)
	case *jsoniq.Unary:
		o, err := e.eval(x.Operand, t)
		if err != nil {
			return variant.Null, err
		}
		if x.Op == "not" {
			return variant.Bool(!o.Truthy()), nil
		}
		return variant.Neg(o)
	case *jsoniq.If:
		cond, err := e.eval(x.Cond, t)
		if err != nil {
			return variant.Null, err
		}
		if cond.Truthy() {
			return e.eval(x.Then, t)
		}
		return e.eval(x.Else, t)
	case *jsoniq.FunctionCall:
		return e.evalFunction(x, t)
	case *jsoniq.FLWOR:
		items, err := e.runFLWOR(x, t)
		if err != nil {
			return variant.Null, err
		}
		return variant.ArrayOf(items), nil
	}
	return variant.Null, fmt.Errorf("runtime: unsupported expression %T", expr)
}

func (e *Engine) evalBinary(x *jsoniq.Binary, t tuple) (variant.Value, error) {
	// Short-circuit logic first.
	switch x.Op {
	case jsoniq.OpAnd:
		l, err := e.eval(x.Left, t)
		if err != nil {
			return variant.Null, err
		}
		if !l.Truthy() {
			return variant.Bool(false), nil
		}
		r, err := e.eval(x.Right, t)
		if err != nil {
			return variant.Null, err
		}
		return variant.Bool(r.Truthy()), nil
	case jsoniq.OpOr:
		l, err := e.eval(x.Left, t)
		if err != nil {
			return variant.Null, err
		}
		if l.Truthy() {
			return variant.Bool(true), nil
		}
		r, err := e.eval(x.Right, t)
		if err != nil {
			return variant.Null, err
		}
		return variant.Bool(r.Truthy()), nil
	}
	l, err := e.eval(x.Left, t)
	if err != nil {
		return variant.Null, err
	}
	r, err := e.eval(x.Right, t)
	if err != nil {
		return variant.Null, err
	}
	switch x.Op {
	case jsoniq.OpAdd:
		return variant.Add(l, r)
	case jsoniq.OpSub:
		return variant.Sub(l, r)
	case jsoniq.OpMul:
		return variant.Mul(l, r)
	case jsoniq.OpDiv:
		return variant.Div(l, r)
	case jsoniq.OpIDiv:
		return variant.IDiv(l, r)
	case jsoniq.OpMod:
		return variant.Mod(l, r)
	case jsoniq.OpConcat:
		ls, rs := l, r
		if ls.Kind() != variant.KindString {
			ls = variant.String(ls.JSON())
		}
		if rs.Kind() != variant.KindString {
			rs = variant.String(rs.JSON())
		}
		return variant.String(ls.AsString() + rs.AsString()), nil
	case jsoniq.OpTo:
		if l.IsNull() || r.IsNull() {
			return variant.ArrayOf(nil), nil
		}
		lo, err := variant.ToInt(l)
		if err != nil {
			return variant.Null, err
		}
		hi, err := variant.ToInt(r)
		if err != nil {
			return variant.Null, err
		}
		if hi < lo {
			return variant.ArrayOf(nil), nil
		}
		if hi-lo > 1<<22 {
			return variant.Null, fmt.Errorf("runtime: range too large (%d)", hi-lo)
		}
		out := make([]variant.Value, 0, hi-lo+1)
		for i := lo; i <= hi; i++ {
			out = append(out, variant.Int(i))
		}
		return variant.ArrayOf(out), nil
	case jsoniq.OpEq, jsoniq.OpNe, jsoniq.OpLt, jsoniq.OpLe, jsoniq.OpGt, jsoniq.OpGe:
		// Comparisons with NULL are false, matching the SQL translation's
		// three-valued logic once a WHERE filters non-TRUE values.
		if l.IsNull() || r.IsNull() {
			return variant.Bool(false), nil
		}
		c := variant.Compare(l, r)
		switch x.Op {
		case jsoniq.OpEq:
			return variant.Bool(c == 0), nil
		case jsoniq.OpNe:
			return variant.Bool(c != 0), nil
		case jsoniq.OpLt:
			return variant.Bool(c < 0), nil
		case jsoniq.OpLe:
			return variant.Bool(c <= 0), nil
		case jsoniq.OpGt:
			return variant.Bool(c > 0), nil
		case jsoniq.OpGe:
			return variant.Bool(c >= 0), nil
		}
	}
	return variant.Null, fmt.Errorf("runtime: unsupported operator %s", x.Op)
}

// itemsOf flattens a function argument into a sequence for aggregates:
// arrays spread, null is empty, scalars are singletons.
func itemsOf(v variant.Value) []variant.Value {
	switch v.Kind() {
	case variant.KindArray:
		return v.AsArray()
	case variant.KindNull:
		return nil
	}
	return []variant.Value{v}
}

func (e *Engine) evalFunction(x *jsoniq.FunctionCall, t tuple) (variant.Value, error) {
	args := make([]variant.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := e.eval(a, t)
		if err != nil {
			return variant.Null, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("runtime: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	one := func() (float64, error) {
		if err := need(1); err != nil {
			return 0, err
		}
		return variant.ToFloat(args[0])
	}
	switch x.Name {
	case "abs":
		f, err := one()
		return variant.Float(math.Abs(f)), err
	case "sqrt":
		f, err := one()
		return variant.Float(math.Sqrt(f)), err
	case "exp":
		f, err := one()
		return variant.Float(math.Exp(f)), err
	case "log":
		f, err := one()
		return variant.Float(math.Log(f)), err
	case "sin":
		f, err := one()
		return variant.Float(math.Sin(f)), err
	case "cos":
		f, err := one()
		return variant.Float(math.Cos(f)), err
	case "tan":
		f, err := one()
		return variant.Float(math.Tan(f)), err
	case "asin":
		f, err := one()
		return variant.Float(math.Asin(f)), err
	case "acos":
		f, err := one()
		return variant.Float(math.Acos(f)), err
	case "atan":
		f, err := one()
		return variant.Float(math.Atan(f)), err
	case "sinh":
		f, err := one()
		return variant.Float(math.Sinh(f)), err
	case "cosh":
		f, err := one()
		return variant.Float(math.Cosh(f)), err
	case "tanh":
		f, err := one()
		return variant.Float(math.Tanh(f)), err
	case "floor":
		f, err := one()
		return variant.Float(math.Floor(f)), err
	case "ceiling":
		f, err := one()
		return variant.Float(math.Ceil(f)), err
	case "round":
		f, err := one()
		return variant.Float(math.Round(f)), err
	case "atan2":
		if err := need(2); err != nil {
			return variant.Null, err
		}
		y, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, err
		}
		xv, err := variant.ToFloat(args[1])
		if err != nil {
			return variant.Null, err
		}
		return variant.Float(math.Atan2(y, xv)), nil
	case "pow", "power":
		if err := need(2); err != nil {
			return variant.Null, err
		}
		b, err := variant.ToFloat(args[0])
		if err != nil {
			return variant.Null, err
		}
		p, err := variant.ToFloat(args[1])
		if err != nil {
			return variant.Null, err
		}
		return variant.Float(math.Pow(b, p)), nil
	case "pi":
		if err := need(0); err != nil {
			return variant.Null, err
		}
		return variant.Float(math.Pi), nil
	case "count":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		return variant.Int(int64(len(itemsOf(args[0])))), nil
	case "sum":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		items := itemsOf(args[0])
		acc := variant.Int(0)
		for _, it := range items {
			if it.IsNull() {
				continue
			}
			var err error
			acc, err = variant.Add(acc, it)
			if err != nil {
				return variant.Null, err
			}
		}
		return acc, nil
	case "avg":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		items := itemsOf(args[0])
		var sum float64
		var n int
		for _, it := range items {
			if it.IsNull() {
				continue
			}
			f, err := variant.ToFloat(it)
			if err != nil {
				return variant.Null, err
			}
			sum += f
			n++
		}
		if n == 0 {
			return variant.Null, nil
		}
		return variant.Float(sum / float64(n)), nil
	case "min", "max":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		dir := 1
		if x.Name == "min" {
			dir = -1
		}
		best := variant.Null
		for _, it := range itemsOf(args[0]) {
			if it.IsNull() {
				continue
			}
			if best.IsNull() || dir*variant.Compare(it, best) > 0 {
				best = it
			}
		}
		return best, nil
	case "size":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray {
			return variant.Null, nil
		}
		return variant.Int(int64(args[0].Len())), nil
	case "exists":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		return variant.Bool(len(itemsOf(args[0])) > 0), nil
	case "empty":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		return variant.Bool(len(itemsOf(args[0])) == 0), nil
	case "not":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		return variant.Bool(!args[0].Truthy()), nil
	case "boolean":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		return variant.Bool(args[0].Truthy()), nil
	case "string":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() == variant.KindString {
			return args[0], nil
		}
		return variant.String(args[0].JSON()), nil
	case "number", "double":
		f, err := one()
		return variant.Float(f), err
	case "integer":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		i, err := variant.ToInt(args[0])
		if err != nil {
			return variant.Null, err
		}
		return variant.Int(i), nil
	case "concat":
		// Array concatenation (used e.g. to merge particle collections).
		if err := need(2); err != nil {
			return variant.Null, err
		}
		if args[0].Kind() != variant.KindArray || args[1].Kind() != variant.KindArray {
			return variant.Null, fmt.Errorf("runtime: concat() expects two arrays")
		}
		out := make([]variant.Value, 0, args[0].Len()+args[1].Len())
		out = append(out, args[0].AsArray()...)
		out = append(out, args[1].AsArray()...)
		return variant.ArrayOf(out), nil
	case "head":
		if err := need(1); err != nil {
			return variant.Null, err
		}
		items := itemsOf(args[0])
		if len(items) == 0 {
			return variant.Null, nil
		}
		return items[0], nil
	}
	return variant.Null, fmt.Errorf("runtime: unknown function %s()", x.Name)
}
