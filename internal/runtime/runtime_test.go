package runtime

import (
	"testing"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/variant"
)

func adlDocs() []variant.Value {
	rows := []string{
		`{"EVENT": 1, "MET": {"pt": 10.5}, "Muon": [{"pt": 30.0, "charge": 1}, {"pt": 5.0, "charge": -1}]}`,
		`{"EVENT": 2, "MET": {"pt": 20.0}, "Muon": []}`,
		`{"EVENT": 3, "MET": {"pt": 35.5}, "Muon": [{"pt": 50.0, "charge": -1}]}`,
		`{"EVENT": 4, "MET": {"pt": 40.0}, "Muon": [{"pt": 8.0, "charge": 1}, {"pt": 9.0, "charge": 1}, {"pt": 60.0, "charge": -1}]}`,
	}
	docs := make([]variant.Value, len(rows))
	for i, r := range rows {
		docs[i] = variant.MustParseJSON(r)
	}
	return docs
}

func newTestEngine(p Profile) *Engine {
	e := New(p)
	e.LoadCollection("adl", adlDocs())
	return e
}

func run(t *testing.T, e *Engine, src string) []variant.Value {
	t.Helper()
	out, err := e.Run(jsoniq.MustParse(src))
	if err != nil {
		t.Fatalf("Run(%s): %v", src, err)
	}
	return out
}

func TestSimpleForReturn(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl") return $e.EVENT`)
	if len(out) != 4 {
		t.Fatalf("items = %d", len(out))
	}
	if out[0].AsInt() != 1 || out[3].AsInt() != 4 {
		t.Errorf("out = %v", out)
	}
}

func TestWhereFilters(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl") where $e.MET.pt gt 20 return $e.EVENT`)
	if len(out) != 2 {
		t.Fatalf("items = %v", out)
	}
}

func TestListing1Unboxing(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		for $m in $e.Muon[]
		where abs($m.pt) lt 10
		return $m.pt`)
	if len(out) != 3 { // 5.0, 8.0, 9.0
		t.Fatalf("items = %v", out)
	}
}

func TestNestedQueryKeepsAllObjects(t *testing.T) {
	// The Listing-4 semantics: a nested query never removes parent objects.
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		let $filtered := (
			for $m in $e.Muon[]
			where $m.pt gt 10
			return $m
		)
		return {"ev": $e.EVENT, "n": size($filtered)}`)
	if len(out) != 4 {
		t.Fatalf("items = %d, want 4 (no object elimination)", len(out))
	}
	want := map[int64]int64{1: 1, 2: 0, 3: 1, 4: 1}
	for _, o := range out {
		ev := o.Field("ev").AsInt()
		if o.Field("n").AsInt() != want[ev] {
			t.Errorf("event %d n = %v, want %d", ev, o.Field("n"), want[ev])
		}
	}
}

func TestGroupByWithCount(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		group by $bin := floor($e.MET.pt div 20)
		order by $bin
		return {"bin": $bin, "n": count($e)}`)
	if len(out) != 3 {
		t.Fatalf("groups = %v", out)
	}
	if out[0].Field("bin").AsFloat() != 0 || out[0].Field("n").AsInt() != 1 {
		t.Errorf("bin0 = %v", out[0])
	}
	if out[1].Field("n").AsInt() != 2 { // 20.0 and 35.5
		t.Errorf("bin1 = %v", out[1])
	}
}

func TestGroupByNonGroupingVarsBecomeArrays(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		let $pt := $e.MET.pt
		group by $k := 1
		return sum($pt)`)
	if len(out) != 1 {
		t.Fatalf("groups = %v", out)
	}
	if got := out[0].AsFloat(); got != 106.0 {
		t.Errorf("sum = %v", got)
	}
}

func TestOrderByDescending(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl") order by $e.MET.pt descending return $e.EVENT`)
	if out[0].AsInt() != 4 || out[3].AsInt() != 1 {
		t.Errorf("order = %v", out)
	}
}

func TestCountClause(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl") count $c where $c le 2 return $c`)
	if len(out) != 2 || out[1].AsInt() != 2 {
		t.Errorf("out = %v", out)
	}
}

func TestRangeAndPositional(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $i in 1 to 3 return $i * 10`)
	if len(out) != 3 || out[2].AsInt() != 30 {
		t.Fatalf("out = %v", out)
	}
	out = run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 4
		return $e.Muon[[2]].pt`)
	if len(out) != 1 || out[0].AsFloat() != 9.0 {
		t.Errorf("positional = %v", out)
	}
}

func TestForAtPositionVariable(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 1
		return (for $m at $i in $e.Muon[] return $i)`)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	arr := out[0]
	if arr.Len() != 2 || arr.Index(0).AsInt() != 1 || arr.Index(1).AsInt() != 2 {
		t.Errorf("positions = %v", arr)
	}
}

func TestAllowingEmpty(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		for $m allowing empty in $e.Muon[]
		return $e.EVENT`)
	if len(out) != 7 { // 6 muons + 1 empty binding for event 2
		t.Fatalf("out = %v", out)
	}
}

func TestExistsAndEmpty(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		where exists(for $m in $e.Muon[] where $m.pt gt 40 return $m)
		return $e.EVENT`)
	if len(out) != 2 { // events 3 and 4
		t.Fatalf("exists out = %v", out)
	}
	out = run(t, e, `for $e in collection("adl")
		where empty($e.Muon[])
		return $e.EVENT`)
	if len(out) != 1 || out[0].AsInt() != 2 {
		t.Fatalf("empty out = %v", out)
	}
}

func TestAggregateFunctions(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 4
		let $pts := (for $m in $e.Muon[] return $m.pt)
		return {"n": count($pts), "s": sum($pts), "mn": min($pts), "mx": max($pts), "av": avg($pts)}`)
	o := out[0]
	if o.Field("n").AsInt() != 3 || o.Field("s").AsFloat() != 77 ||
		o.Field("mn").AsFloat() != 8 || o.Field("mx").AsFloat() != 60 {
		t.Errorf("aggregates = %v", o)
	}
	if av := o.Field("av").AsFloat(); av < 25.6 || av > 25.7 {
		t.Errorf("avg = %v", av)
	}
}

func TestIfExpression(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		return if ($e.MET.pt gt 20) then "high" else "low"`)
	if out[0].AsString() != "low" || out[3].AsString() != "high" {
		t.Errorf("out = %v", out)
	}
}

func TestScalarTopLevelQuery(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `1 + 2`)
	if len(out) != 1 || out[0].AsInt() != 3 {
		t.Errorf("out = %v", out)
	}
}

func TestProfilesAgree(t *testing.T) {
	src := `for $e in collection("adl")
		let $filtered := (for $m in $e.Muon[] where $m.pt gt 10 return $m.pt)
		order by $e.EVENT
		return {"ev": $e.EVENT, "f": $filtered}`
	var results [][]variant.Value
	for _, p := range []Profile{ProfileDefault, ProfileRumbleSpark, ProfileAsterix} {
		e := newTestEngine(p)
		results = append(results, run(t, e, src))
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("profile %d row count %d vs %d", i, len(results[i]), len(results[0]))
		}
		for j := range results[0] {
			if !variant.Equal(results[i][j], results[0][j]) {
				t.Errorf("profile %d row %d = %v, want %v", i, j, results[i][j], results[0][j])
			}
		}
	}
}

func TestErrorUnboundVariable(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	if _, err := e.Run(jsoniq.MustParse(`for $e in collection("adl") return $missing`)); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestErrorUnknownCollection(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	if _, err := e.Run(jsoniq.MustParse(`for $e in collection("nope") return $e`)); err == nil {
		t.Error("unknown collection should error")
	}
}

func TestErrorUnknownFunction(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	if _, err := e.Run(jsoniq.MustParse(`for $e in collection("adl") return frobnicate($e)`)); err == nil {
		t.Error("unknown function should error")
	}
}

func TestMathFunctions(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $i in 1 to 1
		return {"s": sqrt(16.0), "h": sinh(0.0), "a": atan2(0.0, 1.0), "p": pow(2, 10)}`)
	o := out[0]
	if o.Field("s").AsFloat() != 4 || o.Field("h").AsFloat() != 0 ||
		o.Field("a").AsFloat() != 0 || o.Field("p").AsFloat() != 1024 {
		t.Errorf("math = %v", o)
	}
}
