package runtime

import (
	"testing"

	"jsonpark/internal/jsoniq"
	"jsonpark/internal/variant"
)

func TestConcatFunction(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 1
		let $a := (for $m in $e.Muon[] return $m.pt)
		return concat($a, [99.0])`)
	arr := out[0]
	if arr.Len() != 3 || arr.Index(2).AsFloat() != 99 {
		t.Errorf("concat = %v", arr)
	}
	if _, err := e.Run(jsoniq.MustParse(`for $e in collection("adl") return concat($e.EVENT, [1])`)); err == nil {
		t.Error("concat over non-arrays should error")
	}
}

func TestHeadFunction(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 1
		return head(for $m in $e.Muon[] return $m.pt)`)
	if out[0].AsFloat() != 30 {
		t.Errorf("head = %v", out[0])
	}
	out = run(t, e, `for $e in collection("adl")
		where $e.EVENT eq 2
		return head($e.Muon[])`)
	if !out[0].IsNull() {
		t.Errorf("head of empty = %v", out[0])
	}
}

func TestFieldAccessMapsOverArrays(t *testing.T) {
	// Post-group-by variables are arrays; field access maps over them,
	// mirroring JSONiq sequence semantics.
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		group by $k := 1
		return sum($e.MET.pt)`)
	if got := out[0].AsFloat(); got != 106.0 {
		t.Errorf("sum over mapped field = %v", got)
	}
}

func TestAsterixProfileParsesAtScan(t *testing.T) {
	e := New(ProfileAsterix)
	e.LoadCollection("adl", adlDocs())
	// Two scans must both parse fresh values and agree.
	a := run(t, e, `for $e in collection("adl") return $e.EVENT`)
	b := run(t, e, `for $e in collection("adl") return $e.EVENT`)
	if len(a) != len(b) {
		t.Fatal("scan results differ")
	}
	for i := range a {
		if !variant.Equal(a[i], b[i]) {
			t.Errorf("row %d differs", i)
		}
	}
}

func TestRumbleSparkBoundarySerializationPreservesValues(t *testing.T) {
	e := New(ProfileRumbleSpark)
	e.LoadCollection("adl", adlDocs())
	out := run(t, e, `for $e in collection("adl")
		for $m in $e.Muon[]
		where $m.pt gt 10
		return {"pt": $m.pt}`)
	want := run(t, newTestEngine(ProfileDefault), `for $e in collection("adl")
		for $m in $e.Muon[]
		where $m.pt gt 10
		return {"pt": $m.pt}`)
	if len(out) != len(want) {
		t.Fatalf("rows = %d vs %d", len(out), len(want))
	}
	for i := range out {
		if !variant.Equal(out[i], want[i]) {
			t.Errorf("row %d: %v vs %v", i, out[i], want[i])
		}
	}
}

func TestGroupByMultipleKeysRuntime(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		for $m in $e.Muon[]
		group by $q := $m.charge, $hi := $m.pt gt 20
		order by $q, $hi
		return {"q": $q, "hi": $hi, "n": count($m)}`)
	var total int64
	for _, o := range out {
		total += o.Field("n").AsInt()
	}
	if total != 6 { // all muons across events
		t.Errorf("total muons = %d, want 6 (%v)", total, out)
	}
}

func TestOrderByStableOnTies(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	// All keys equal: order must preserve input order (stable sort).
	out := run(t, e, `for $e in collection("adl") order by 1 return $e.EVENT`)
	for i, v := range out {
		if v.AsInt() != int64(i+1) {
			t.Fatalf("stable order broken: %v", out)
		}
	}
}

func TestLetShadowingLaterClauses(t *testing.T) {
	e := newTestEngine(ProfileDefault)
	out := run(t, e, `for $e in collection("adl")
		let $x := 1
		let $x := $x + 1
		where $e.EVENT eq 1
		return $x`)
	if out[0].AsInt() != 2 {
		t.Errorf("rebinding let = %v", out[0])
	}
}
