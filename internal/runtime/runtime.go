// Package runtime is the interpreted JSONiq back-end: it executes the
// iterator tree directly over materialized JSON items with per-item dynamic
// dispatch and clause-by-clause materialization. It is the stand-in for the
// paper's DSQL baselines (§V-A): the ProfileRumbleSpark profile adds
// serialization at pipeline-stage boundaries (Spark shuffle + UDF data
// movement), while ProfileAsterix parses documents at scan time (document
// store without shredded storage). Both retain the defining property the
// paper attributes to DSQL engines: interpretation overhead and optimization
// barriers, in contrast to the single compiled SQL query of the translator.
package runtime

import (
	"fmt"
	"sort"

	"jsonpark/internal/iterplan"
	"jsonpark/internal/jsoniq"
	"jsonpark/internal/variant"
)

// Profile selects the baseline cost model.
type Profile int

// Profiles.
const (
	// ProfileDefault interprets over in-memory values with no extra costs.
	ProfileDefault Profile = iota
	// ProfileRumbleSpark re-serializes tuple bindings at for-clause
	// boundaries, modeling Spark stage shuffles and UDF data movement.
	ProfileRumbleSpark
	// ProfileAsterix stores collections as serialized JSON and parses each
	// document at scan time (no shredded/columnar storage).
	ProfileAsterix
)

// Engine is one interpreted back-end instance.
type Engine struct {
	profile     Profile
	collections map[string][]variant.Value
	encoded     map[string][][]byte
}

// New returns an empty interpreted engine with the given profile.
func New(profile Profile) *Engine {
	return &Engine{
		profile:     profile,
		collections: make(map[string][]variant.Value),
		encoded:     make(map[string][][]byte),
	}
}

// LoadCollection registers a named collection of items.
func (e *Engine) LoadCollection(name string, docs []variant.Value) {
	e.collections[name] = docs
	if e.profile == ProfileAsterix {
		enc := make([][]byte, len(docs))
		for i, d := range docs {
			enc[i] = []byte(d.JSON())
		}
		e.encoded[name] = enc
	}
}

// Run parses nothing: it executes an already-parsed query and returns the
// result items in order.
func (e *Engine) Run(query jsoniq.Expr) ([]variant.Value, error) {
	root, err := iterplan.Build(query)
	if err != nil {
		return nil, err
	}
	return e.RunIterators(root)
}

// RunIterators executes an iterator tree.
func (e *Engine) RunIterators(root *iterplan.Iterator) ([]variant.Value, error) {
	if root.Kind == iterplan.KindReturn {
		fl := root.Expr.(*jsoniq.FLWOR)
		return e.runFLWOR(fl, newTuple(nil))
	}
	v, err := e.eval(root.Expr, newTuple(nil))
	if err != nil {
		return nil, err
	}
	return []variant.Value{v}, nil
}

// tuple is one FLWOR binding environment.
type tuple map[string]variant.Value

func newTuple(parent tuple) tuple {
	t := make(tuple, len(parent)+2)
	for k, v := range parent {
		t[k] = v
	}
	return t
}

// serializeBoundary simulates a stage barrier: every binding is round-tripped
// through its serialized form.
func serializeBoundary(ts []tuple) []tuple {
	out := make([]tuple, len(ts))
	for i, t := range ts {
		nt := make(tuple, len(t))
		for k, v := range t {
			decoded, err := variant.ParseJSON([]byte(v.JSON()))
			if err != nil {
				decoded = v
			}
			nt[k] = decoded
		}
		out[i] = nt
	}
	return out
}

// runFLWOR materializes the tuple stream clause by clause (the interpreted
// execution mode) and evaluates the return expression per tuple.
func (e *Engine) runFLWOR(f *jsoniq.FLWOR, env tuple) ([]variant.Value, error) {
	tuples := []tuple{env}
	for _, c := range f.Clauses {
		var err error
		tuples, err = e.applyClause(c, tuples)
		if err != nil {
			return nil, err
		}
	}
	out := make([]variant.Value, 0, len(tuples))
	for _, t := range tuples {
		v, err := e.eval(f.Return, t)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (e *Engine) applyClause(c jsoniq.Clause, in []tuple) ([]tuple, error) {
	switch cl := c.(type) {
	case *jsoniq.ForClause:
		var out []tuple
		for _, t := range in {
			seq, err := e.sequenceOf(cl.In, t)
			if err != nil {
				return nil, err
			}
			if len(seq) == 0 && cl.AllowEmpty {
				nt := newTuple(t)
				nt[cl.Var] = variant.Null
				if cl.PosVar != "" {
					nt[cl.PosVar] = variant.Int(0)
				}
				out = append(out, nt)
				continue
			}
			for i, item := range seq {
				nt := newTuple(t)
				nt[cl.Var] = item
				if cl.PosVar != "" {
					nt[cl.PosVar] = variant.Int(int64(i + 1))
				}
				out = append(out, nt)
			}
		}
		if e.profile == ProfileRumbleSpark {
			out = serializeBoundary(out)
		}
		return out, nil
	case *jsoniq.LetClause:
		out := make([]tuple, len(in))
		for i, t := range in {
			v, err := e.eval(cl.Expr, t)
			if err != nil {
				return nil, err
			}
			nt := newTuple(t)
			nt[cl.Var] = v
			out[i] = nt
		}
		return out, nil
	case *jsoniq.WhereClause:
		var out []tuple
		for _, t := range in {
			v, err := e.eval(cl.Cond, t)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, t)
			}
		}
		return out, nil
	case *jsoniq.GroupByClause:
		return e.applyGroupBy(cl, in)
	case *jsoniq.OrderByClause:
		type keyed struct {
			t    tuple
			keys []variant.Value
		}
		ks := make([]keyed, len(in))
		for i, t := range in {
			kv := make([]variant.Value, len(cl.Keys))
			for j, k := range cl.Keys {
				v, err := e.eval(k.Expr, t)
				if err != nil {
					return nil, err
				}
				kv[j] = v
			}
			ks[i] = keyed{t: t, keys: kv}
		}
		sort.SliceStable(ks, func(a, b int) bool {
			for j := range cl.Keys {
				c := variant.Compare(ks[a].keys[j], ks[b].keys[j])
				if cl.Keys[j].Descending {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		out := make([]tuple, len(ks))
		for i := range ks {
			out[i] = ks[i].t
		}
		return out, nil
	case *jsoniq.CountClause:
		out := make([]tuple, len(in))
		for i, t := range in {
			nt := newTuple(t)
			nt[cl.Var] = variant.Int(int64(i + 1))
			out[i] = nt
		}
		return out, nil
	}
	return nil, fmt.Errorf("runtime: unsupported clause %T", c)
}

// applyGroupBy groups tuples by the key variables; every non-grouping
// variable becomes an array of its per-tuple values, per JSONiq semantics.
func (e *Engine) applyGroupBy(cl *jsoniq.GroupByClause, in []tuple) ([]tuple, error) {
	type group struct {
		keyVals []variant.Value
		tuples  []tuple
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range in {
		keyVals := make([]variant.Value, len(cl.Keys))
		hk := ""
		for i, k := range cl.Keys {
			var v variant.Value
			var err error
			if k.Expr != nil {
				v, err = e.eval(k.Expr, t)
			} else {
				var ok bool
				v, ok = t[k.Var]
				if !ok {
					err = fmt.Errorf("runtime: group by references unbound variable $%s", k.Var)
				}
			}
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			hk += v.HashKey() + "|"
		}
		g, ok := groups[hk]
		if !ok {
			g = &group{keyVals: keyVals}
			groups[hk] = g
			order = append(order, hk)
		}
		g.tuples = append(g.tuples, t)
	}
	// Collect the set of non-grouping variables.
	keyVars := make(map[string]bool, len(cl.Keys))
	for _, k := range cl.Keys {
		keyVars[k.Var] = true
	}
	varSet := make(map[string]bool)
	for _, t := range in {
		for name := range t {
			if !keyVars[name] {
				varSet[name] = true
			}
		}
	}
	out := make([]tuple, 0, len(order))
	for _, hk := range order {
		g := groups[hk]
		nt := make(tuple, len(cl.Keys)+len(varSet))
		for i, k := range cl.Keys {
			nt[k.Var] = g.keyVals[i]
		}
		for name := range varSet {
			vals := make([]variant.Value, 0, len(g.tuples))
			for _, t := range g.tuples {
				if v, ok := t[name]; ok {
					vals = append(vals, v)
				}
			}
			nt[name] = variant.ArrayOf(vals)
		}
		out = append(out, nt)
	}
	return out, nil
}

// sequenceOf evaluates a for-clause binding expression as a sequence.
func (e *Engine) sequenceOf(in jsoniq.Expr, t tuple) ([]variant.Value, error) {
	switch x := in.(type) {
	case *jsoniq.ArrayUnbox:
		base, err := e.eval(x.Base, t)
		if err != nil {
			return nil, err
		}
		if base.Kind() != variant.KindArray {
			return nil, nil
		}
		return base.AsArray(), nil
	case *jsoniq.Collection:
		return e.scanCollection(x.Name)
	case *jsoniq.Binary:
		if x.Op == jsoniq.OpTo {
			v, err := e.eval(in, t)
			if err != nil {
				return nil, err
			}
			return v.AsArray(), nil
		}
	case *jsoniq.FLWOR:
		return e.runFLWOR(x, t)
	}
	v, err := e.eval(in, t)
	if err != nil {
		return nil, err
	}
	// An array-valued binding iterates its members when produced by a nested
	// query (let-bound arrays), matching the translation's flatten behaviour.
	if v.Kind() == variant.KindArray {
		return v.AsArray(), nil
	}
	if v.IsNull() {
		return nil, nil
	}
	return []variant.Value{v}, nil
}

func (e *Engine) scanCollection(name string) ([]variant.Value, error) {
	if e.profile == ProfileAsterix {
		enc, ok := e.encoded[name]
		if !ok {
			return nil, fmt.Errorf("runtime: unknown collection %q", name)
		}
		out := make([]variant.Value, len(enc))
		for i, raw := range enc {
			v, err := variant.ParseJSON(raw)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	docs, ok := e.collections[name]
	if !ok {
		return nil, fmt.Errorf("runtime: unknown collection %q", name)
	}
	return docs, nil
}
