package variant

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Exact binary (de)serialization. Unlike AppendGroupKey — which canonicalizes
// values into grouping equivalence classes (1 and 1.0 share an encoding,
// object keys sort) — this codec round-trips a Value bit-for-bit: integers
// keep their int64 payload, floats keep their exact bit pattern (NaN
// payloads, -0), and objects keep insertion order. The engine's spill files
// rely on that exactness: a row written to disk and read back must compare,
// group and render identically to the in-memory original, or spilling would
// change query output.
const (
	serNull   = 0x00
	serFalse  = 0x01
	serTrue   = 0x02
	serInt    = 0x03
	serFloat  = 0x04
	serString = 0x05
	serArray  = 0x06
	serObject = 0x07
)

// AppendBinary appends the exact binary encoding of v to dst and returns the
// extended slice. The encoding is self-delimiting, so concatenated values
// decode back without separators.
func (v Value) AppendBinary(dst []byte) []byte {
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			return append(dst, serTrue)
		}
		return append(dst, serFalse)
	case KindInt:
		dst = append(dst, serInt)
		return binary.AppendVarint(dst, int64(v.num))
	case KindFloat:
		dst = append(dst, serFloat)
		return binary.BigEndian.AppendUint64(dst, v.num)
	case KindString:
		dst = append(dst, serString)
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		return append(dst, v.str...)
	case KindArray:
		dst = append(dst, serArray)
		dst = binary.AppendUvarint(dst, uint64(len(v.arr)))
		for _, e := range v.arr {
			dst = e.AppendBinary(dst)
		}
		return dst
	case KindObject:
		dst = append(dst, serObject)
		keys := v.obj.Keys()
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for i, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst = v.obj.ValueAt(i).AppendBinary(dst)
		}
		return dst
	}
	return append(dst, serNull)
}

// DecodeBinary decodes one value from the front of src, returning it and the
// unconsumed tail. Strings copy out of src, so the caller may reuse its
// buffer after decoding.
func DecodeBinary(src []byte) (Value, []byte, error) {
	if len(src) == 0 {
		return Null, nil, fmt.Errorf("variant: decode: empty input")
	}
	tag := src[0]
	src = src[1:]
	switch tag {
	case serNull:
		return Null, src, nil
	case serFalse:
		return Bool(false), src, nil
	case serTrue:
		return Bool(true), src, nil
	case serInt:
		n, w := binary.Varint(src)
		if w <= 0 {
			return Null, nil, fmt.Errorf("variant: decode: bad int varint")
		}
		return Int(n), src[w:], nil
	case serFloat:
		if len(src) < 8 {
			return Null, nil, fmt.Errorf("variant: decode: short float")
		}
		bits := binary.BigEndian.Uint64(src)
		return Value{kind: KindFloat, num: bits}, src[8:], nil
	case serString:
		n, w := binary.Uvarint(src)
		if w <= 0 || uint64(len(src)-w) < n {
			return Null, nil, fmt.Errorf("variant: decode: bad string length")
		}
		s := string(src[w : w+int(n)])
		return String(s), src[w+int(n):], nil
	case serArray:
		n, w := binary.Uvarint(src)
		if w <= 0 {
			return Null, nil, fmt.Errorf("variant: decode: bad array length")
		}
		src = src[w:]
		elems := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			var e Value
			var err error
			e, src, err = DecodeBinary(src)
			if err != nil {
				return Null, nil, err
			}
			elems = append(elems, e)
		}
		return ArrayOf(elems), src, nil
	case serObject:
		n, w := binary.Uvarint(src)
		if w <= 0 {
			return Null, nil, fmt.Errorf("variant: decode: bad object length")
		}
		src = src[w:]
		o := NewObject()
		for i := uint64(0); i < n; i++ {
			klen, kw := binary.Uvarint(src)
			if kw <= 0 || uint64(len(src)-kw) < klen {
				return Null, nil, fmt.Errorf("variant: decode: bad object key")
			}
			key := string(src[kw : kw+int(klen)])
			src = src[kw+int(klen):]
			var f Value
			var err error
			f, src, err = DecodeBinary(src)
			if err != nil {
				return Null, nil, err
			}
			o.Set(key, f)
		}
		return ObjectValue(o), src, nil
	}
	return Null, nil, fmt.Errorf("variant: decode: unknown tag 0x%02x", tag)
}

// BinaryEqual reports whether two values encode to the same bytes — a
// stricter relation than Equal (it distinguishes Int(1) from Float(1.0), +0
// from -0, and object field orders). Spill tests use it to prove exact
// round-trips.
func BinaryEqual(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindFloat:
		return a.num == b.num || (math.IsNaN(a.AsFloat()) && math.IsNaN(b.AsFloat()))
	default:
		ab := a.AppendBinary(nil)
		bb := b.AppendBinary(nil)
		return string(ab) == string(bb)
	}
}
