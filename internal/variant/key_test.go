package variant

import (
	"bytes"
	"math"
	"testing"
)

// keyCorpus spans every kind plus the numeric edge cases whose grouping
// behavior the encoder must preserve from HashKey.
func keyCorpus() []Value {
	obj1 := NewObject()
	obj1.Set("a", Int(1))
	obj1.Set("b", String("x"))
	obj2 := NewObject() // same pairs, different insertion order
	obj2.Set("b", String("x"))
	obj2.Set("a", Int(1))
	obj3 := NewObject()
	obj3.Set("a", Int(2))
	return []Value{
		Null,
		Bool(true),
		Bool(false),
		Int(0),
		Int(1),
		Int(-1),
		Int(1 << 53),
		Int(1<<53 + 1), // collapses onto float64(2^53), matching HashKey
		Float(0),
		Float(math.Copysign(0, -1)), // -0 groups apart from 0, like HashKey
		Float(1),
		Float(1.5),
		Float(-1),
		Float(math.NaN()),
		Float(math.Float64frombits(0x7ff8000000000001)), // NaN, different payload
		Float(math.Inf(1)),
		Float(math.Inf(-1)),
		String(""),
		String("a"),
		String("ab"),
		String("b"),
		ArrayOf(nil),
		ArrayOf([]Value{Int(1)}),
		ArrayOf([]Value{Int(1), Int(2)}),
		ArrayOf([]Value{String("a"), String("b")}),
		ObjectValue(obj1),
		ObjectValue(obj2),
		ObjectValue(obj3),
	}
}

// TestGroupKeyMatchesHashKeyClasses asserts the binary encoder induces
// exactly the same equivalence classes as the string HashKey over the
// corpus: every pair agrees on equal-vs-distinct.
func TestGroupKeyMatchesHashKeyClasses(t *testing.T) {
	vals := keyCorpus()
	for i, a := range vals {
		for j, b := range vals {
			hashEq := a.HashKey() == b.HashKey()
			binEq := bytes.Equal(a.AppendGroupKey(nil), b.AppendGroupKey(nil))
			if hashEq != binEq {
				t.Errorf("corpus[%d]=%s vs corpus[%d]=%s: HashKey equal=%v, AppendGroupKey equal=%v",
					i, a, j, b, hashEq, binEq)
			}
		}
	}
}

// TestGroupKeyTupleInjective asserts self-delimiting: concatenated tuple
// encodings collide only when the tuples are component-wise equal. The
// classic failure shapes are shifted string boundaries and array vs split
// elements.
func TestGroupKeyTupleInjective(t *testing.T) {
	tuples := [][]Value{
		{String("a"), String("bc")},
		{String("ab"), String("c")},
		{String("abc"), String("")},
		{String(""), String("abc")},
		{ArrayOf([]Value{Int(1), Int(2)})},
		{ArrayOf([]Value{Int(1)}), Int(2)},
		{Int(1), Int(2)},
		{Int(12)},
		{Null, Null},
		{ArrayOf([]Value{Null}), Null},
	}
	enc := func(tu []Value) string {
		var buf []byte
		for _, v := range tu {
			buf = v.AppendGroupKey(buf)
		}
		return string(buf)
	}
	for i, a := range tuples {
		for j, b := range tuples {
			if i == j {
				continue
			}
			if enc(a) == enc(b) {
				t.Errorf("tuples %d and %d encode identically: %v vs %v", i, j, a, b)
			}
		}
	}
}

// TestGroupKeyBufferReuse asserts append-into-prefix semantics: encoding
// into a reused buffer leaves earlier content intact.
func TestGroupKeyBufferReuse(t *testing.T) {
	buf := Int(7).AppendGroupKey(nil)
	n := len(buf)
	buf = String("xyz").AppendGroupKey(buf)
	if !bytes.Equal(buf[:n], Int(7).AppendGroupKey(nil)) {
		t.Fatal("prefix clobbered by subsequent append")
	}
	if !bytes.Equal(buf[n:], String("xyz").AppendGroupKey(nil)) {
		t.Fatal("suffix does not match standalone encoding")
	}
}
