// Package variant implements the dynamically typed value model shared by
// every layer of jsonpark: the JSONiq runtime, the SQL engine, the Snowpark
// API, and the storage layer. It plays the role of Snowflake's VARIANT type:
// a tagged union over null, boolean, integer, double, string, array and
// object, with total ordering, numeric coercion and JSON (de)serialization.
package variant

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The dynamic kinds, in comparison order (null < bool < number < string <
// array < object). Int and Float compare as numbers.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindArray
	KindObject
)

// String returns the SQL-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "NUMBER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindArray:
		return "ARRAY"
	case KindObject:
		return "OBJECT"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an immutable dynamically typed value. The zero Value is SQL NULL.
// Values are cheap to copy; arrays and objects share their backing storage,
// so callers must not mutate the slices returned by Array, Keys or Fields.
type Value struct {
	kind Kind
	num  uint64 // bool (0/1), int64 bits, or float64 bits
	str  string
	arr  []Value
	obj  *Object
}

// Object is an insertion-ordered string-keyed record.
type Object struct {
	keys   []string
	values []Value
	index  map[string]int
}

// Null is the SQL NULL value.
var Null = Value{kind: KindNull}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a double value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Array returns an array value wrapping vs without copying.
func Array(vs ...Value) Value { return Value{kind: KindArray, arr: vs} }

// ArrayOf returns an array value backed directly by vs.
func ArrayOf(vs []Value) Value { return Value{kind: KindArray, arr: vs} }

// NewObject returns an empty mutable object builder.
func NewObject() *Object {
	return &Object{index: make(map[string]int)}
}

// ObjectValue wraps a finished Object as a Value.
func ObjectValue(o *Object) Value { return Value{kind: KindObject, obj: o} }

// ObjectFromPairs builds an object value from alternating key, value pairs.
func ObjectFromPairs(pairs ...any) Value {
	if len(pairs)%2 != 0 {
		panic("variant.ObjectFromPairs: odd number of arguments")
	}
	o := NewObject()
	for i := 0; i < len(pairs); i += 2 {
		key, ok := pairs[i].(string)
		if !ok {
			panic("variant.ObjectFromPairs: key is not a string")
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			panic("variant.ObjectFromPairs: value is not a variant.Value")
		}
		o.Set(key, v)
	}
	return ObjectValue(o)
}

// Set inserts or replaces a field. It returns the object for chaining.
func (o *Object) Set(key string, v Value) *Object {
	if i, ok := o.index[key]; ok {
		o.values[i] = v
		return o
	}
	o.index[key] = len(o.keys)
	o.keys = append(o.keys, key)
	o.values = append(o.values, v)
	return o
}

// Get returns the value of a field and whether it is present.
func (o *Object) Get(key string) (Value, bool) {
	if o == nil {
		return Null, false
	}
	if i, ok := o.index[key]; ok {
		return o.values[i], true
	}
	return Null, false
}

// Len returns the number of fields.
func (o *Object) Len() int {
	if o == nil {
		return 0
	}
	return len(o.keys)
}

// Keys returns the insertion-ordered field names. Callers must not mutate it.
func (o *Object) Keys() []string {
	if o == nil {
		return nil
	}
	return o.keys
}

// ValueAt returns the i-th field value in insertion order.
func (o *Object) ValueAt(i int) Value { return o.values[i] }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumber reports whether v is an Int or Float.
func (v Value) IsNumber() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsBool returns the boolean payload; v must be KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// AsInt returns the integer payload; v must be KindInt.
func (v Value) AsInt() int64 { return int64(v.num) }

// AsFloat returns a float64 view of a numeric value (Int or Float).
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(int64(v.num))
	}
	return math.Float64frombits(v.num)
}

// AsString returns the string payload; v must be KindString.
func (v Value) AsString() string { return v.str }

// AsArray returns the backing slice of an array value. Callers must not
// mutate it.
func (v Value) AsArray() []Value { return v.arr }

// AsObject returns the backing Object of an object value (possibly nil).
func (v Value) AsObject() *Object { return v.obj }

// Field returns the named field of an object value. Accessing a field of a
// non-object, or a missing field, yields NULL — VARIANT semantics.
func (v Value) Field(name string) Value {
	if v.kind != KindObject {
		return Null
	}
	out, _ := v.obj.Get(name)
	return out
}

// Index returns the i-th element of an array value (0-based). Out-of-range
// or non-array access yields NULL.
func (v Value) Index(i int) Value {
	if v.kind != KindArray || i < 0 || i >= len(v.arr) {
		return Null
	}
	return v.arr[i]
}

// Len returns the number of elements of an array or fields of an object,
// and 0 for anything else.
func (v Value) Len() int {
	switch v.kind {
	case KindArray:
		return len(v.arr)
	case KindObject:
		return v.obj.Len()
	}
	return 0
}

// Truthy reports the JSONiq effective boolean value: NULL and false are
// false; everything else follows JSONiq atomization rules (non-zero numbers,
// non-empty strings are true; arrays/objects are true).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindNull:
		return false
	case KindBool:
		return v.num != 0
	case KindInt:
		return int64(v.num) != 0
	case KindFloat:
		f := math.Float64frombits(v.num)
		return f != 0 && !math.IsNaN(f)
	case KindString:
		return v.str != ""
	}
	return true
}

// Compare totally orders two values: NULL first, then by kind order, numbers
// compared numerically across Int/Float, strings lexicographically, arrays
// element-wise, objects by sorted key/value pairs. It returns -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := rankOf(a.kind), rankOf(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool:
		return boolCompare(a.num != 0, b.num != 0)
	case KindInt, KindFloat:
		if a.kind == KindInt && b.kind == KindInt {
			x, y := int64(a.num), int64(b.num)
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		}
		x, y := a.AsFloat(), b.AsFloat()
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.str, b.str)
	case KindArray:
		n := len(a.arr)
		if len(b.arr) < n {
			n = len(b.arr)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.arr[i], b.arr[i]); c != 0 {
				return c
			}
		}
		return len(a.arr) - len(b.arr)
	case KindObject:
		ka := append([]string(nil), a.obj.Keys()...)
		kb := append([]string(nil), b.obj.Keys()...)
		sort.Strings(ka)
		sort.Strings(kb)
		n := len(ka)
		if len(kb) < n {
			n = len(kb)
		}
		for i := 0; i < n; i++ {
			if c := strings.Compare(ka[i], kb[i]); c != 0 {
				return c
			}
			va, _ := a.obj.Get(ka[i])
			vb, _ := b.obj.Get(kb[i])
			if c := Compare(va, vb); c != 0 {
				return c
			}
		}
		return len(ka) - len(kb)
	}
	return 0
}

func rankOf(k Kind) int {
	switch k {
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	case KindArray:
		return 4
	case KindObject:
		return 5
	case KindBool:
		return 1
	}
	return 0 // null
}

func boolCompare(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	}
	return 1
}

// Equal reports deep equality under Compare's ordering.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// HashKey returns a string usable as a map key for grouping and joins. It is
// injective for scalar values and deep for arrays/objects.
func (v Value) HashKey() string {
	var b strings.Builder
	v.appendHash(&b)
	return b.String()
}

func (v Value) appendHash(b *strings.Builder) {
	switch v.kind {
	case KindNull:
		b.WriteByte('n')
	case KindBool:
		if v.num != 0 {
			b.WriteString("bt")
		} else {
			b.WriteString("bf")
		}
	case KindInt:
		// Integers and integral floats hash identically so that 1 and 1.0
		// group together, matching numeric comparison semantics.
		f := float64(int64(v.num))
		b.WriteByte('d')
		b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	case KindFloat:
		b.WriteByte('d')
		b.WriteString(strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64))
	case KindString:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.str)))
		b.WriteByte(':')
		b.WriteString(v.str)
	case KindArray:
		b.WriteByte('[')
		for _, e := range v.arr {
			e.appendHash(b)
			b.WriteByte(',')
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		keys := append([]string(nil), v.obj.Keys()...)
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			f, _ := v.obj.Get(k)
			f.appendHash(b)
			b.WriteByte(',')
		}
		b.WriteByte('}')
	}
}

// DeepSizeBytes estimates the uncompressed in-memory footprint of v. The
// storage layer uses it for micro-partition sizing and bytes-scanned
// accounting.
func (v Value) DeepSizeBytes() int64 {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindString:
		return int64(8 + len(v.str))
	case KindArray:
		var n int64 = 8
		for _, e := range v.arr {
			n += e.DeepSizeBytes()
		}
		return n
	case KindObject:
		var n int64 = 8
		for i, k := range v.obj.Keys() {
			n += int64(len(k)) + v.obj.ValueAt(i).DeepSizeBytes()
		}
		return n
	}
	return 0
}
