package variant

import (
	"fmt"
	"math"
)

// Arithmetic and coercion helpers shared by the SQL engine and the JSONiq
// interpreter. NULL propagates through every operation (SQL three-valued
// arithmetic); type errors are reported, not silently coerced.

// errNonNumeric builds a consistent error for arithmetic on a non-number.
func errNonNumeric(op string, v Value) error {
	return fmt.Errorf("variant: %s on non-numeric value of type %s", op, v.Kind())
}

// Add returns a+b with int preservation when both operands are ints.
func Add(a, b Value) (Value, error) { return numericOp("add", a, b) }

// Sub returns a-b.
func Sub(a, b Value) (Value, error) { return numericOp("subtract", a, b) }

// Mul returns a*b.
func Mul(a, b Value) (Value, error) { return numericOp("multiply", a, b) }

// Div returns a/b as a double (JSONiq `div` and SQL `/` semantics).
// Division by zero yields an error for ints and ±Inf for doubles.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumber() {
		return Null, errNonNumeric("divide", a)
	}
	if !b.IsNumber() {
		return Null, errNonNumeric("divide", b)
	}
	x, y := a.AsFloat(), b.AsFloat()
	if y == 0 && a.Kind() == KindInt && b.Kind() == KindInt {
		return Null, fmt.Errorf("variant: integer division by zero")
	}
	return Float(x / y), nil
}

// IDiv returns the integer quotient (JSONiq `idiv`).
func IDiv(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumber() || !b.IsNumber() {
		return Null, errNonNumeric("idiv", a)
	}
	y := b.AsFloat()
	if y == 0 {
		return Null, fmt.Errorf("variant: idiv by zero")
	}
	return Int(int64(math.Trunc(a.AsFloat() / y))), nil
}

// Mod returns the remainder (sign follows the dividend, as in Go and SQL).
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumber() || !b.IsNumber() {
		return Null, errNonNumeric("mod", a)
	}
	if a.Kind() == KindInt && b.Kind() == KindInt {
		if b.AsInt() == 0 {
			return Null, fmt.Errorf("variant: mod by zero")
		}
		return Int(a.AsInt() % b.AsInt()), nil
	}
	return Float(math.Mod(a.AsFloat(), b.AsFloat())), nil
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	if a.IsNull() {
		return Null, nil
	}
	switch a.Kind() {
	case KindInt:
		return Int(-a.AsInt()), nil
	case KindFloat:
		return Float(-a.AsFloat()), nil
	}
	return Null, errNonNumeric("negate", a)
}

func numericOp(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumber() {
		return Null, errNonNumeric(op, a)
	}
	if !b.IsNumber() {
		return Null, errNonNumeric(op, b)
	}
	if a.Kind() == KindInt && b.Kind() == KindInt {
		x, y := a.AsInt(), b.AsInt()
		switch op {
		case "add":
			return Int(x + y), nil
		case "subtract":
			return Int(x - y), nil
		case "multiply":
			return Int(x * y), nil
		}
	}
	x, y := a.AsFloat(), b.AsFloat()
	switch op {
	case "add":
		return Float(x + y), nil
	case "subtract":
		return Float(x - y), nil
	case "multiply":
		return Float(x * y), nil
	}
	return Null, fmt.Errorf("variant: unknown op %q", op)
}

// ToFloat coerces a value to a double: numbers pass through, booleans map to
// 0/1, numeric strings parse. Anything else errors.
func ToFloat(v Value) (float64, error) {
	switch v.Kind() {
	case KindInt, KindFloat:
		return v.AsFloat(), nil
	case KindBool:
		if v.AsBool() {
			return 1, nil
		}
		return 0, nil
	case KindString:
		var f float64
		if _, err := fmt.Sscanf(v.AsString(), "%g", &f); err == nil {
			return f, nil
		}
	}
	return 0, fmt.Errorf("variant: cannot coerce %s to DOUBLE", v.Kind())
}

// ToInt coerces a value to an integer, truncating doubles.
func ToInt(v Value) (int64, error) {
	switch v.Kind() {
	case KindInt:
		return v.AsInt(), nil
	case KindFloat:
		return int64(math.Trunc(v.AsFloat())), nil
	case KindBool:
		if v.AsBool() {
			return 1, nil
		}
		return 0, nil
	}
	f, err := ToFloat(v)
	if err != nil {
		return 0, fmt.Errorf("variant: cannot coerce %s to NUMBER", v.Kind())
	}
	return int64(math.Trunc(f)), nil
}
