package variant

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseJSON decodes one JSON document into a Value. Numbers without a
// fractional part or exponent decode as KindInt when they fit in int64,
// otherwise as KindFloat.
func ParseJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return Null, fmt.Errorf("variant: parse json: %w", err)
	}
	return FromAny(raw)
}

// MustParseJSON is ParseJSON that panics on error; intended for tests and
// literals in examples.
func MustParseJSON(s string) Value {
	v, err := ParseJSON([]byte(s))
	if err != nil {
		panic(err)
	}
	return v
}

// FromAny converts a decoded encoding/json value (or plain Go scalars,
// slices and maps) into a Value. Map keys are emitted in sorted order so the
// conversion is deterministic.
func FromAny(raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool(x), nil
	case string:
		return String(x), nil
	case json.Number:
		if i, err := strconv.ParseInt(string(x), 10, 64); err == nil {
			return Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return Null, fmt.Errorf("variant: bad number %q: %w", x, err)
		}
		return Float(f), nil
	case int:
		return Int(int64(x)), nil
	case int64:
		return Int(x), nil
	case float64:
		return Float(x), nil
	case []any:
		arr := make([]Value, len(x))
		for i, e := range x {
			v, err := FromAny(e)
			if err != nil {
				return Null, err
			}
			arr[i] = v
		}
		return ArrayOf(arr), nil
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		o := NewObject()
		for _, k := range keys {
			v, err := FromAny(x[k])
			if err != nil {
				return Null, err
			}
			o.Set(k, v)
		}
		return ObjectValue(o), nil
	case Value:
		return x, nil
	}
	return Null, fmt.Errorf("variant: unsupported Go type %T", raw)
}

// JSON renders v as compact JSON. NaN and infinities render as null, which
// matches how engines serialize non-finite doubles into JSON output.
func (v Value) JSON() string {
	var b strings.Builder
	v.appendJSON(&b)
	return b.String()
}

func (v Value) appendJSON(b *strings.Builder) {
	switch v.kind {
	case KindNull:
		b.WriteString("null")
	case KindBool:
		if v.num != 0 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case KindInt:
		b.WriteString(strconv.FormatInt(int64(v.num), 10))
	case KindFloat:
		f := math.Float64frombits(v.num)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			b.WriteString("null")
			return
		}
		s := strconv.FormatFloat(f, 'g', -1, 64)
		b.WriteString(s)
		if !strings.ContainsAny(s, ".eE") {
			b.WriteString(".0") // keep doubles distinguishable from ints
		}
	case KindString:
		enc, _ := json.Marshal(v.str)
		b.Write(enc)
	case KindArray:
		b.WriteByte('[')
		for i, e := range v.arr {
			if i > 0 {
				b.WriteByte(',')
			}
			e.appendJSON(b)
		}
		b.WriteByte(']')
	case KindObject:
		b.WriteByte('{')
		for i, k := range v.obj.Keys() {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, _ := json.Marshal(k)
			b.Write(enc)
			b.WriteByte(':')
			v.obj.ValueAt(i).appendJSON(b)
		}
		b.WriteByte('}')
	}
}

// String implements fmt.Stringer with the JSON rendering.
func (v Value) String() string { return v.JSON() }
