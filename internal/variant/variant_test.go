package variant

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Bool(true), KindBool},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{String("x"), KindString},
		{Array(Int(1)), KindArray},
		{ObjectFromPairs("a", Int(1)), KindObject},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestFieldAndIndexMissAreNull(t *testing.T) {
	o := ObjectFromPairs("a", Int(1))
	if got := o.Field("b"); !got.IsNull() {
		t.Errorf("missing field = %v, want null", got)
	}
	if got := Int(3).Field("a"); !got.IsNull() {
		t.Errorf("field of scalar = %v, want null", got)
	}
	a := Array(Int(1), Int(2))
	if got := a.Index(5); !got.IsNull() {
		t.Errorf("out of range index = %v, want null", got)
	}
	if got := a.Index(-1); !got.IsNull() {
		t.Errorf("negative index = %v, want null", got)
	}
	if got := a.Index(1); got.AsInt() != 2 {
		t.Errorf("a[1] = %v, want 2", got)
	}
}

func TestObjectSetReplaces(t *testing.T) {
	o := NewObject()
	o.Set("k", Int(1))
	o.Set("k", Int(2))
	if o.Len() != 1 {
		t.Fatalf("Len = %d, want 1", o.Len())
	}
	v, ok := o.Get("k")
	if !ok || v.AsInt() != 2 {
		t.Fatalf("Get(k) = %v,%v, want 2,true", v, ok)
	}
}

func TestCompareNumbersAcrossKinds(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("2 should equal 2.0")
	}
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Error("2 < 2.5")
	}
	if Compare(Float(3.1), Int(3)) <= 0 {
		t.Error("3.1 > 3")
	}
}

func TestCompareKindOrder(t *testing.T) {
	order := []Value{Null, Bool(false), Bool(true), Int(-5), String(""), Array(), ObjectValue(NewObject())}
	for i := 0; i < len(order)-1; i++ {
		if Compare(order[i], order[i+1]) >= 0 {
			t.Errorf("expected %v < %v", order[i], order[i+1])
		}
	}
}

func TestCompareArraysDeep(t *testing.T) {
	a := Array(Int(1), Int(2))
	b := Array(Int(1), Int(3))
	c := Array(Int(1), Int(2), Int(0))
	if Compare(a, b) >= 0 {
		t.Error("[1,2] < [1,3]")
	}
	if Compare(a, c) >= 0 {
		t.Error("[1,2] < [1,2,0]")
	}
	if Compare(a, Array(Int(1), Int(2))) != 0 {
		t.Error("equal arrays should compare equal")
	}
}

func TestCompareObjects(t *testing.T) {
	a := ObjectFromPairs("x", Int(1), "y", Int(2))
	b := ObjectFromPairs("y", Int(2), "x", Int(1)) // different insertion order
	if Compare(a, b) != 0 {
		t.Error("objects with same fields should be equal regardless of order")
	}
	c := ObjectFromPairs("x", Int(1), "y", Int(3))
	if Compare(a, c) >= 0 {
		t.Error("{x:1,y:2} < {x:1,y:3}")
	}
}

func TestHashKeyNumericUnification(t *testing.T) {
	if Int(1).HashKey() != Float(1.0).HashKey() {
		t.Error("1 and 1.0 should hash identically for grouping")
	}
	if Int(1).HashKey() == Int(2).HashKey() {
		t.Error("distinct ints must hash differently")
	}
	if String("1").HashKey() == Int(1).HashKey() {
		t.Error("string \"1\" must not collide with number 1")
	}
}

func TestHashKeyInjectiveOnStrings(t *testing.T) {
	// The length prefix prevents concatenation ambiguity inside arrays.
	a := Array(String("ab"), String("c"))
	b := Array(String("a"), String("bc"))
	if a.HashKey() == b.HashKey() {
		t.Error("hash keys must distinguish [ab,c] from [a,bc]")
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Null, false},
		{Bool(false), false},
		{Bool(true), true},
		{Int(0), false},
		{Int(3), true},
		{Float(0), false},
		{Float(math.NaN()), false},
		{String(""), false},
		{String("x"), true},
		{Array(), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, c.v.Truthy(), c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `{"EVENT":263142897,"HLT":{"IsoMu24":false},"JET":[{"pt":12.5,"eta":-1.25},{"pt":40.0,"eta":0.5}],"empty":[],"s":"hi\n"}`
	v, err := ParseJSON([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if v.Field("EVENT").AsInt() != 263142897 {
		t.Errorf("EVENT = %v", v.Field("EVENT"))
	}
	if v.Field("HLT").Field("IsoMu24").AsBool() {
		t.Error("IsoMu24 should be false")
	}
	if got := v.Field("JET").Index(0).Field("pt").AsFloat(); got != 12.5 {
		t.Errorf("JET[0].pt = %v", got)
	}
	round, err := ParseJSON([]byte(v.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, round) {
		t.Errorf("round trip mismatch: %s vs %s", v.JSON(), round.JSON())
	}
}

func TestJSONIntVsFloatDistinct(t *testing.T) {
	if !strings.Contains(Float(40).JSON(), ".") {
		t.Errorf("integral doubles must render with a fractional marker, got %s", Float(40).JSON())
	}
	if Int(40).JSON() != "40" {
		t.Errorf("int renders as %s", Int(40).JSON())
	}
	if Float(math.NaN()).JSON() != "null" {
		t.Error("NaN must serialize as null")
	}
}

func TestArithmetic(t *testing.T) {
	mustV := func(v Value, err error) Value {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if got := mustV(Add(Int(2), Int(3))); got.Kind() != KindInt || got.AsInt() != 5 {
		t.Errorf("2+3 = %v", got)
	}
	if got := mustV(Add(Int(2), Float(0.5))); got.Kind() != KindFloat || got.AsFloat() != 2.5 {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := mustV(Mul(Int(4), Int(5))); got.AsInt() != 20 {
		t.Errorf("4*5 = %v", got)
	}
	if got := mustV(Div(Int(7), Int(2))); got.AsFloat() != 3.5 {
		t.Errorf("7 div 2 = %v", got)
	}
	if got := mustV(IDiv(Int(7), Int(2))); got.AsInt() != 3 {
		t.Errorf("7 idiv 2 = %v", got)
	}
	if got := mustV(Mod(Int(7), Int(3))); got.AsInt() != 1 {
		t.Errorf("7 mod 3 = %v", got)
	}
	if got := mustV(Neg(Float(2.5))); got.AsFloat() != -2.5 {
		t.Errorf("-2.5 = %v", got)
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(a, b Value) (Value, error){Add, Sub, Mul, Div, Mod, IDiv} {
		v, err := op(Null, Int(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(null,1) = %v, %v; want null, nil", v, err)
		}
		v, err = op(Int(1), Null)
		if err != nil || !v.IsNull() {
			t.Errorf("op(1,null) = %v, %v; want null, nil", v, err)
		}
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Add(String("a"), Int(1)); err == nil {
		t.Error("adding string should error")
	}
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("integer division by zero should error")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("mod by zero should error")
	}
}

func TestCoercions(t *testing.T) {
	f, err := ToFloat(String("2.5"))
	if err != nil || f != 2.5 {
		t.Errorf("ToFloat(\"2.5\") = %v, %v", f, err)
	}
	i, err := ToInt(Float(3.9))
	if err != nil || i != 3 {
		t.Errorf("ToInt(3.9) = %v, %v", i, err)
	}
	if _, err := ToFloat(Array()); err == nil {
		t.Error("ToFloat(array) should error")
	}
}

// Property: Compare is a total order — antisymmetric and reflexive — over
// randomly generated scalar values.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64, fa, fb float64, sa, sb string) bool {
		vals := []Value{Int(a), Int(b), Float(fa), Float(fb), String(sa), String(sb), Null, Bool(a%2 == 0)}
		for _, x := range vals {
			for _, y := range vals {
				if Compare(x, y) != -Compare(y, x) {
					// NaN floats break ordering; exclude them.
					if x.Kind() == KindFloat && math.IsNaN(x.AsFloat()) {
						continue
					}
					if y.Kind() == KindFloat && math.IsNaN(y.AsFloat()) {
						continue
					}
					return false
				}
				if Equal(x, y) != (Compare(x, y) == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trip preserves equality for generated nested values.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, bs []byte) bool {
		if math.IsNaN(fl) || math.IsInf(fl, 0) {
			fl = 0.5
		}
		inner := Array(Int(i), Float(fl), String(s), Null, Bool(i > 0))
		v := ObjectFromPairs("a", inner, "b", ObjectFromPairs("c", String(string(bs))), "n", Int(i))
		round, err := ParseJSON([]byte(v.JSON()))
		if err != nil {
			// non-UTF8 byte strings may not round trip; encoding/json replaces
			// invalid bytes, so only require success for valid UTF-8.
			return true
		}
		if strings.ToValidUTF8(s, "�") != s || strings.ToValidUTF8(string(bs), "�") != string(bs) {
			return true
		}
		return Equal(v, round)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeepSizeBytes(t *testing.T) {
	if Int(1).DeepSizeBytes() != 8 {
		t.Error("int size")
	}
	v := Array(Int(1), Int(2))
	if v.DeepSizeBytes() != 8+16 {
		t.Errorf("array size = %d", v.DeepSizeBytes())
	}
	if String("abcd").DeepSizeBytes() != 12 {
		t.Errorf("string size = %d", String("abcd").DeepSizeBytes())
	}
}

func TestFromAnyGoTypes(t *testing.T) {
	v, err := FromAny(map[string]any{"b": int64(2), "a": 1.5, "c": []any{nil, true}})
	if err != nil {
		t.Fatal(err)
	}
	// Map keys sort deterministically.
	if got := v.AsObject().Keys()[0]; got != "a" {
		t.Errorf("first key = %q", got)
	}
	if v.Field("b").Kind() != KindInt || v.Field("a").Kind() != KindFloat {
		t.Errorf("kinds = %v %v", v.Field("b").Kind(), v.Field("a").Kind())
	}
	if !v.Field("c").Index(0).IsNull() || !v.Field("c").Index(1).AsBool() {
		t.Errorf("array = %v", v.Field("c"))
	}
	if _, err := FromAny(struct{}{}); err == nil {
		t.Error("unsupported type should error")
	}
}

func TestParseJSONErrors(t *testing.T) {
	if _, err := ParseJSON([]byte(`{"a":`)); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ParseJSON([]byte(``)); err == nil {
		t.Error("empty input should fail")
	}
}
