package variant

import (
	"encoding/binary"
	"math"
	"sort"
)

// Binary group-key encoding. AppendGroupKey is the allocation-free
// replacement for HashKey on the hot grouping paths: hash aggregation,
// hash-join build/probe and DISTINCT dedup all key their tables with it,
// reusing one caller-owned buffer per operator instead of building a string
// per row.
//
// The encoding preserves HashKey's equivalence classes exactly:
//
//   - numbers key by float64 value, so Int(1) and Float(1.0) share a key,
//     +0 and -0 do not, integers beyond 2^53 collapse onto their float64
//     rounding, and every NaN payload shares one canonical key;
//   - strings, booleans and null key by identity;
//   - arrays key element-wise, objects by sorted key/value pairs.
//
// Every encoding is self-delimiting (tag byte, then a fixed-width or
// length-prefixed payload), so the concatenation of a key tuple's encodings
// stays injective without separators.
const (
	groupKeyNull   = 0x00
	groupKeyFalse  = 0x01
	groupKeyTrue   = 0x02
	groupKeyNumber = 0x03
	groupKeyString = 0x04
	groupKeyArray  = 0x05
	groupKeyObject = 0x06
)

// canonicalNaNBits is the single bit pattern all NaNs encode as, mirroring
// strconv.FormatFloat collapsing every NaN payload to "NaN" in HashKey.
var canonicalNaNBits = math.Float64bits(math.NaN())

// AppendGroupKey appends the canonical binary encoding of v to dst and
// returns the extended slice. The caller owns dst; encoding allocates only
// when dst must grow.
func (v Value) AppendGroupKey(dst []byte) []byte {
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			return append(dst, groupKeyTrue)
		}
		return append(dst, groupKeyFalse)
	case KindInt:
		// Integers key through float64 like HashKey, so 1 and 1.0 group
		// together under numeric comparison semantics.
		return appendGroupKeyNumber(dst, float64(int64(v.num)))
	case KindFloat:
		return appendGroupKeyNumber(dst, math.Float64frombits(v.num))
	case KindString:
		dst = append(dst, groupKeyString)
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		return append(dst, v.str...)
	case KindArray:
		dst = append(dst, groupKeyArray)
		dst = binary.AppendUvarint(dst, uint64(len(v.arr)))
		for _, e := range v.arr {
			dst = e.AppendGroupKey(dst)
		}
		return dst
	case KindObject:
		dst = append(dst, groupKeyObject)
		keys := append([]string(nil), v.obj.Keys()...)
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			f, _ := v.obj.Get(k)
			dst = f.AppendGroupKey(dst)
		}
		return dst
	}
	return append(dst, groupKeyNull)
}

func appendGroupKeyNumber(dst []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if f != f {
		bits = canonicalNaNBits
	}
	dst = append(dst, groupKeyNumber)
	return binary.BigEndian.AppendUint64(dst, bits)
}
