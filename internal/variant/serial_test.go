package variant

import (
	"math"
	"testing"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	enc := v.AppendBinary(nil)
	out, rest, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("decode %s: %v", v.JSON(), err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode %s: %d trailing bytes", v.JSON(), len(rest))
	}
	return out
}

func TestBinaryRoundTripExact(t *testing.T) {
	obj := NewObject().Set("z", Int(1)).Set("a", String("x")) // insertion order z, a
	cases := []Value{
		Null,
		Bool(true),
		Bool(false),
		Int(0),
		Int(42),
		Int(-7),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(0),
		Float(math.Copysign(0, -1)),
		Float(1.5),
		Float(math.Inf(1)),
		Float(math.Inf(-1)),
		Float(math.NaN()),
		String(""),
		String("héllo\x00world"),
		Array(),
		Array(Int(1), Float(1), String("1"), Null),
		ObjectValue(obj),
		Array(ObjectValue(obj), Array(Bool(false))),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !BinaryEqual(v, got) {
			t.Errorf("round trip changed %s (kind %v) into %s (kind %v)",
				v.JSON(), v.Kind(), got.JSON(), got.Kind())
		}
	}
}

// The codec must distinguish what grouping deliberately conflates.
func TestBinaryDistinguishesGroupKeyClasses(t *testing.T) {
	pairs := [][2]Value{
		{Int(1), Float(1)},
		{Float(0), Float(math.Copysign(0, -1))},
	}
	for _, p := range pairs {
		a := p[0].AppendBinary(nil)
		b := p[1].AppendBinary(nil)
		if string(a) == string(b) {
			t.Errorf("%s and %s must not share a binary encoding", p[0].JSON(), p[1].JSON())
		}
	}
}

func TestBinaryObjectKeepsInsertionOrder(t *testing.T) {
	o := NewObject().Set("b", Int(2)).Set("a", Int(1))
	got := roundTrip(t, ObjectValue(o))
	keys := got.AsObject().Keys()
	if len(keys) != 2 || keys[0] != "b" || keys[1] != "a" {
		t.Fatalf("insertion order lost: %v", keys)
	}
}

func TestBinaryConcatenationSelfDelimits(t *testing.T) {
	vals := []Value{Int(5), String("ab"), Array(Int(1)), Null, Float(2.25)}
	var enc []byte
	for _, v := range vals {
		enc = v.AppendBinary(enc)
	}
	rest := enc
	for i, want := range vals {
		var got Value
		var err error
		got, rest, err = DecodeBinary(rest)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !BinaryEqual(want, got) {
			t.Fatalf("value %d: want %s got %s", i, want.JSON(), got.JSON())
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestDecodeBinaryRejectsTruncated(t *testing.T) {
	// Every strict prefix of the array encoding is missing declared content,
	// so decoding must error rather than fabricate values.
	full := Array(Int(1), String("hello"), Float(3.5)).AppendBinary(nil)
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeBinary(full[:cut]); err == nil {
			t.Fatalf("truncation at %d did not error", cut)
		}
	}
	if _, _, err := DecodeBinary([]byte{0xff}); err == nil {
		t.Fatal("unknown tag must error")
	}
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Fatal("empty input must error")
	}
}
