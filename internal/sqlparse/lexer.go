// Package sqlparse parses the SQL dialect defined in package sqlast. The
// engine accepts only SQL text, so the translation layer really does produce
// a single native query string whose compilation is independently measurable.
package sqlparse

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tEOF         tokenKind = iota
	tIdent                 // bare identifier (uppercased keywords compared case-insensitively)
	tQuotedIdent           // "name"
	tString                // 'text'
	tNumber                // 123 or 1.5
	tPunct                 // operators and punctuation, Text holds the symbol
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error reports a SQL parse failure with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func lexSQL(src string) ([]token, error) {
	var out []token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			adv(1)
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case c == '"':
			startL, startC := line, col
			adv(1)
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '"' {
					if i+1 < len(src) && src[i+1] == '"' {
						b.WriteByte('"')
						adv(2)
						continue
					}
					adv(1)
					closed = true
					break
				}
				b.WriteByte(src[i])
				adv(1)
			}
			if !closed {
				return nil, &Error{Line: startL, Col: startC, Msg: "unterminated quoted identifier"}
			}
			out = append(out, token{tQuotedIdent, b.String(), startL, startC})
		case c == '\'':
			startL, startC := line, col
			adv(1)
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						adv(2)
						continue
					}
					adv(1)
					closed = true
					break
				}
				b.WriteByte(src[i])
				adv(1)
			}
			if !closed {
				return nil, &Error{Line: startL, Col: startC, Msg: "unterminated string literal"}
			}
			out = append(out, token{tString, b.String(), startL, startC})
		case c >= '0' && c <= '9':
			startL, startC := line, col
			start := i
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				adv(1)
			}
			if i < len(src) && src[i] == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				adv(1)
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					adv(1)
				}
			}
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < len(src) && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < len(src) && src[j] >= '0' && src[j] <= '9' {
					adv(j - i)
					for i < len(src) && src[i] >= '0' && src[i] <= '9' {
						adv(1)
					}
				}
			}
			out = append(out, token{tNumber, src[start:i], startL, startC})
		case isIdentStart(c):
			startL, startC := line, col
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				adv(1)
			}
			out = append(out, token{tIdent, src[start:i], startL, startC})
		default:
			startL, startC := line, col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "::", "=>", "<>", "!=", "<=", ">=", "||":
				adv(2)
				out = append(out, token{tPunct, two, startL, startC})
				continue
			}
			switch c {
			case '(', ')', ',', '.', '*', '+', '-', '/', '%', '=', '<', '>':
				adv(1)
				out = append(out, token{tPunct, string(c), startL, startC})
			default:
				return nil, &Error{Line: startL, Col: startC, Msg: fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	out = append(out, token{tEOF, "", line, col})
	return out, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$'
}
