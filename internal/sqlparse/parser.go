package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

// Parse parses one SQL query (SELECT possibly combined with UNION ALL).
func Parse(src string) (sqlast.Query, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, p.errf("unexpected %q after end of query", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the given keyword
// (case-insensitive bare identifier).
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) isKwAt(n int, kw string) bool {
	t := p.peekAt(n)
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) isPunct(s string) bool {
	t := p.peek()
	return t.kind == tPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

// parseQuery parses select (UNION ALL select)* with optional parenthesized
// operands, as emitted by the renderer.
func (p *parser) parseQuery() (sqlast.Query, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.isKw("union") {
		p.advance()
		if err := p.expectKw("all"); err != nil {
			return nil, err
		}
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &sqlast.SetOp{Op: "UNION ALL", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseQueryTerm() (sqlast.Query, error) {
	if p.isPunct("(") {
		p.advance()
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*sqlast.Select, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &sqlast.Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKw("from") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		s.From = from
	}
	if p.acceptKw("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.isKw("group") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.isKw("order") {
		p.advance()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		s.OrderBy = items
	}
	if p.acceptKw("limit") {
		t := p.peek()
		if t.kind != tNumber {
			return nil, p.errf("expected LIMIT count, found %q", t.text)
		}
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = &n
	}
	return s, nil
}

func (p *parser) parseOrderItems() ([]sqlast.OrderItem, error) {
	var items []sqlast.OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := sqlast.OrderItem{Expr: e}
		if p.acceptKw("desc") {
			item.Desc = true
		} else {
			p.acceptKw("asc")
		}
		items = append(items, item)
		if p.acceptPunct(",") {
			continue
		}
		return items, nil
	}
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.isPunct("*") {
		p.advance()
		return sqlast.SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKw("as") {
		alias, err := p.parseIdent()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tQuotedIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

// fromTerminators are keywords that end a from-clause item list.
var fromTerminators = []string{"where", "group", "order", "limit", "having", "union"}

func (p *parser) atFromEnd() bool {
	t := p.peek()
	if t.kind == tEOF || t.kind == tPunct && t.text == ")" {
		return true
	}
	for _, kw := range fromTerminators {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseFrom() (sqlast.FromItem, error) {
	left, err := p.parseFromPrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct(","):
			// Only `, LATERAL FLATTEN` comma-joins are supported; plain
			// comma cross joins must be written as CROSS JOIN.
			if !p.isKwAt(1, "lateral") {
				return left, nil
			}
			p.advance() // ,
			p.advance() // LATERAL
			fl, err := p.parseFlatten(left)
			if err != nil {
				return nil, err
			}
			left = fl
		case p.isKw("cross"):
			p.advance()
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Join{Kind: "CROSS", Left: left, Right: right}
		case p.isKw("left"):
			p.advance()
			p.acceptKw("outer")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Join{Kind: "LEFT OUTER", Left: left, Right: right, On: on}
		case p.isKw("inner") || p.isKw("join"):
			p.acceptKw("inner")
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Join{Kind: "INNER", Left: left, Right: right, On: on}
		default:
			if !p.atFromEnd() && p.isKw("lateral") {
				p.advance()
				fl, err := p.parseFlatten(left)
				if err != nil {
					return nil, err
				}
				left = fl
				continue
			}
			return left, nil
		}
	}
}

func (p *parser) parseFlatten(src sqlast.FromItem) (sqlast.FromItem, error) {
	if err := p.expectKw("flatten"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectKw("input"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("=>"); err != nil {
		return nil, err
	}
	input, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	outer := false
	if p.acceptPunct(",") {
		if err := p.expectKw("outer"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("=>"); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKw("true"):
			outer = true
		case p.acceptKw("false"):
		default:
			return nil, p.errf("expected TRUE or FALSE for OUTER")
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.acceptKw("as")
	alias, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &sqlast.Flatten{Source: src, Input: input, Outer: outer, Alias: alias}, nil
}

func (p *parser) parseFromPrimary() (sqlast.FromItem, error) {
	if p.isPunct("(") {
		p.advance()
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ref := &sqlast.SubqueryRef{Query: q}
		if p.acceptKw("as") {
			alias, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.peek().kind == tQuotedIdent {
			ref.Alias = p.advance().text
		}
		return ref, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ref := &sqlast.TableRef{Name: name}
	if p.acceptKw("as") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	}
	return ref, nil
}

func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	switch t.kind {
	case tQuotedIdent:
		p.advance()
		return t.text, nil
	case tIdent:
		p.advance()
		return strings.ToLower(t.text), nil
	}
	return "", p.errf("expected identifier, found %q", t.text)
}

// Expression grammar: OR > AND > NOT > comparison/IS NULL > concat(||) >
// additive > multiplicative > unary > postfix(::) > primary.

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOrExpr() }

func (p *parser) parseOrExpr() (sqlast.Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		p.advance()
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (sqlast.Expr, error) {
	left, err := p.parseNotExpr()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		p.advance()
		right, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNotExpr() (sqlast.Expr, error) {
	if p.isKw("not") {
		p.advance()
		operand, err := p.parseNotExpr()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "NOT", Operand: operand}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (sqlast.Expr, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tPunct {
			switch t.text {
			case "=", "<>", "!=", "<", "<=", ">", ">=":
				p.advance()
				op := t.text
				if op == "!=" {
					op = "<>"
				}
				right, err := p.parseConcat()
				if err != nil {
					return nil, err
				}
				left = &sqlast.Binary{Op: op, Left: left, Right: right}
				continue
			}
		}
		if p.isKw("is") {
			p.advance()
			negate := p.acceptKw("not")
			if err := p.expectKw("null"); err != nil {
				return nil, err
			}
			left = &sqlast.IsNull{Operand: left, Negate: negate}
			continue
		}
		if p.isKw("between") {
			p.advance()
			lo, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("and"); err != nil {
				return nil, err
			}
			hi, err := p.parseConcat()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{
				Op:    "AND",
				Left:  &sqlast.Binary{Op: ">=", Left: left, Right: lo},
				Right: &sqlast.Binary{Op: "<=", Left: left, Right: hi},
			}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseConcat() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isPunct("+"):
			op = "+"
		case p.isPunct("-"):
			op = "-"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isPunct("*"):
			op = "*"
		case p.isPunct("/"):
			op = "/"
		case p.isPunct("%"):
			op = "%"
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	if p.isPunct("-") {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "-", Operand: operand}, nil
	}
	if p.isPunct("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (sqlast.Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("::") {
		p.advance()
		t := p.peek()
		if t.kind != tIdent {
			return nil, p.errf("expected type name after '::'")
		}
		p.advance()
		e = &sqlast.Cast{Operand: e, Type: strings.ToUpper(t.text)}
	}
	return e, nil
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return sqlast.L(variant.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return sqlast.L(variant.Int(i)), nil
	case tString:
		p.advance()
		return sqlast.L(variant.String(t.text)), nil
	case tQuotedIdent:
		p.advance()
		// Qualified flatten pseudo-columns: "f".VALUE / "f".INDEX.
		if p.isPunct(".") {
			p.advance()
			ft := p.peek()
			if ft.kind != tIdent {
				return nil, p.errf("expected VALUE or INDEX after qualifier")
			}
			p.advance()
			return &sqlast.ColRef{Table: t.text, Name: strings.ToUpper(ft.text)}, nil
		}
		return sqlast.C(t.text), nil
	case tPunct:
		switch t.text {
		case "(":
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "*":
			p.advance()
			return &sqlast.Star{}, nil
		}
	case tIdent:
		switch strings.ToUpper(t.text) {
		case "NULL":
			p.advance()
			return sqlast.L(variant.Null), nil
		case "TRUE":
			p.advance()
			return sqlast.L(variant.Bool(true)), nil
		case "FALSE":
			p.advance()
			return sqlast.L(variant.Bool(false)), nil
		case "CASE":
			return p.parseCase()
		}
		if p.peekAt(1).kind == tPunct && p.peekAt(1).text == "(" {
			return p.parseFuncCall()
		}
		// Bare identifier column reference (handwritten SQL convenience);
		// normalized to lower case, or qualified pseudo-column.
		p.advance()
		if p.isPunct(".") {
			p.advance()
			ft := p.peek()
			if ft.kind != tIdent {
				return nil, p.errf("expected VALUE or INDEX after qualifier")
			}
			p.advance()
			return &sqlast.ColRef{Table: strings.ToLower(t.text), Name: strings.ToUpper(ft.text)}, nil
		}
		return sqlast.C(strings.ToLower(t.text)), nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}

func (p *parser) parseCase() (sqlast.Expr, error) {
	p.advance() // CASE
	c := &sqlast.CaseWhen{}
	for p.isKw("when") {
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.WhenClause{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseFuncCall() (sqlast.Expr, error) {
	name := strings.ToUpper(p.advance().text)
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	call := &sqlast.FuncCall{Name: name}
	if p.acceptKw("distinct") {
		call.Distinct = true
	}
	if !p.isPunct(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.isKw("within") {
		p.advance()
		if err := p.expectKw("group"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if err := p.expectKw("order"); err != nil {
			return nil, err
		}
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		call.WithinOrder = items
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return call, nil
}
