package sqlparse

import (
	"testing"

	"jsonpark/internal/sqlast"
	"jsonpark/internal/variant"
)

func mustParse(t *testing.T, src string) sqlast.Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return q
}

func TestParseFig2Query(t *testing.T) {
	// The generated SQL of Fig. 2b in the paper.
	src := `SELECT COUNT(DISTINCT "o_clerk") FROM (
		SELECT * FROM (SELECT * FROM "orders")
		WHERE (("o_totalprice" >= 90000 :: INT) AND ("o_totalprice" <= 120000 :: INT)))`
	q := mustParse(t, src)
	s, ok := q.(*sqlast.Select)
	if !ok {
		t.Fatalf("top = %T", q)
	}
	fc, ok := s.Items[0].Expr.(*sqlast.FuncCall)
	if !ok || fc.Name != "COUNT" || !fc.Distinct {
		t.Fatalf("item0 = %#v", s.Items[0].Expr)
	}
	sub, ok := s.From.(*sqlast.SubqueryRef)
	if !ok {
		t.Fatalf("from = %T", s.From)
	}
	inner := sub.Query.(*sqlast.Select)
	if inner.Where == nil {
		t.Fatal("inner WHERE missing")
	}
}

func TestParseFlatten(t *testing.T) {
	src := `SELECT "f".VALUE AS "jet" FROM (SELECT * FROM "adl"), LATERAL FLATTEN(INPUT => "JET", OUTER => TRUE) AS "f" WHERE "f".INDEX >= 0`
	q := mustParse(t, src)
	s := q.(*sqlast.Select)
	fl, ok := s.From.(*sqlast.Flatten)
	if !ok {
		t.Fatalf("from = %T", s.From)
	}
	if !fl.Outer || fl.Alias != "f" {
		t.Fatalf("flatten = %+v", fl)
	}
	cr, ok := s.Items[0].Expr.(*sqlast.ColRef)
	if !ok || cr.Table != "f" || cr.Name != "VALUE" {
		t.Fatalf("item = %#v", s.Items[0].Expr)
	}
}

func TestParseJoins(t *testing.T) {
	src := `SELECT * FROM "a" LEFT OUTER JOIN (SELECT * FROM "b") AS "s" ON "a_id" = "b_id" CROSS JOIN "c"`
	q := mustParse(t, src)
	s := q.(*sqlast.Select)
	outer, ok := s.From.(*sqlast.Join)
	if !ok || outer.Kind != "CROSS" {
		t.Fatalf("from = %#v", s.From)
	}
	left, ok := outer.Left.(*sqlast.Join)
	if !ok || left.Kind != "LEFT OUTER" || left.On == nil {
		t.Fatalf("left = %#v", outer.Left)
	}
}

func TestParseUnionAll(t *testing.T) {
	q := mustParse(t, `(SELECT "a" FROM "t1") UNION ALL (SELECT "a" FROM "t2")`)
	so, ok := q.(*sqlast.SetOp)
	if !ok || so.Op != "UNION ALL" {
		t.Fatalf("top = %#v", q)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	src := `SELECT "k", SUM("v") AS "s" FROM "t" GROUP BY "k" HAVING SUM("v") > 10 ORDER BY "s" DESC, "k" ASC LIMIT 5`
	s := mustParse(t, src).(*sqlast.Select)
	if len(s.GroupBy) != 1 || s.Having == nil || len(s.OrderBy) != 2 || s.Limit == nil || *s.Limit != 5 {
		t.Fatalf("select = %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatal("order direction wrong")
	}
}

func TestParseArrayAggWithinGroup(t *testing.T) {
	src := `SELECT ARRAY_AGG("m") WITHIN GROUP (ORDER BY "d" ASC) AS "r" FROM "t" GROUP BY "id"`
	s := mustParse(t, src).(*sqlast.Select)
	fc := s.Items[0].Expr.(*sqlast.FuncCall)
	if fc.Name != "ARRAY_AGG" || len(fc.WithinOrder) != 1 {
		t.Fatalf("call = %#v", fc)
	}
}

func TestParseCaseIsNullBetween(t *testing.T) {
	src := `SELECT CASE WHEN "x" IS NULL THEN 0 WHEN "x" BETWEEN 1 AND 5 THEN 1 ELSE 2 END FROM "t"`
	s := mustParse(t, src).(*sqlast.Select)
	c, ok := s.Items[0].Expr.(*sqlast.CaseWhen)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Fatalf("case = %#v", s.Items[0].Expr)
	}
	if _, ok := c.Whens[0].Cond.(*sqlast.IsNull); !ok {
		t.Fatalf("when0 = %#v", c.Whens[0].Cond)
	}
}

func TestParseBareIdentsLowercased(t *testing.T) {
	s := mustParse(t, `SELECT Foo FROM Bar WHERE foo > 1`).(*sqlast.Select)
	if cr := s.Items[0].Expr.(*sqlast.ColRef); cr.Name != "foo" {
		t.Errorf("bare ident = %q", cr.Name)
	}
	if tr := s.From.(*sqlast.TableRef); tr.Name != "bar" {
		t.Errorf("table = %q", tr.Name)
	}
}

func TestParseLiterals(t *testing.T) {
	s := mustParse(t, `SELECT 1, 2.5, 'it''s', TRUE, NULL, -3 FROM "t"`).(*sqlast.Select)
	if lit := s.Items[0].Expr.(*sqlast.Lit); lit.Value.AsInt() != 1 {
		t.Error("int literal")
	}
	if lit := s.Items[1].Expr.(*sqlast.Lit); lit.Value.AsFloat() != 2.5 {
		t.Error("float literal")
	}
	if lit := s.Items[2].Expr.(*sqlast.Lit); lit.Value.AsString() != "it's" {
		t.Errorf("string literal = %q", lit.Value.AsString())
	}
	if lit := s.Items[3].Expr.(*sqlast.Lit); !lit.Value.AsBool() {
		t.Error("bool literal")
	}
	if lit := s.Items[4].Expr.(*sqlast.Lit); !lit.Value.IsNull() {
		t.Error("null literal")
	}
	if u, ok := s.Items[5].Expr.(*sqlast.Unary); !ok || u.Op != "-" {
		t.Error("negation")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM (SELECT * FROM t`,
		`SELECT 'unterminated FROM t`,
		`SELECT * FROM t LIMIT x`,
		`SELECT CASE END FROM t`,
		`SELECT * FROM t, u`, // plain comma join unsupported
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	queries := []sqlast.Query{
		&sqlast.Select{
			Items: []sqlast.SelectItem{{Star: true}},
			From:  &sqlast.TableRef{Name: "adl"},
			Where: sqlast.B(">", sqlast.F("GET", sqlast.C("MET"), sqlast.L(variant.String("pt"))), sqlast.L(variant.Int(10))),
		},
		&sqlast.Select{
			Items: []sqlast.SelectItem{
				{Expr: &sqlast.ColRef{Table: "f", Name: "VALUE"}, Alias: "m"},
				{Expr: &sqlast.FuncCall{Name: "ARRAY_AGG", Args: []sqlast.Expr{sqlast.C("m")}, WithinOrder: []sqlast.OrderItem{{Expr: sqlast.C("d"), Desc: true}}}, Alias: "agg"},
			},
			From: &sqlast.Flatten{
				Source: &sqlast.SubqueryRef{Query: &sqlast.Select{Items: []sqlast.SelectItem{{Star: true}}, From: &sqlast.TableRef{Name: "t"}}},
				Input:  sqlast.C("Muon"),
				Outer:  true,
				Alias:  "f",
			},
			GroupBy: []sqlast.Expr{sqlast.C("rowid")},
			OrderBy: []sqlast.OrderItem{{Expr: sqlast.C("rowid")}},
			Limit:   sqlast.IntP(10),
		},
		&sqlast.SetOp{
			Op:    "UNION ALL",
			Left:  &sqlast.Select{Items: []sqlast.SelectItem{{Expr: sqlast.C("a")}}, From: &sqlast.TableRef{Name: "x"}},
			Right: &sqlast.Select{Items: []sqlast.SelectItem{{Expr: sqlast.C("a")}}, From: &sqlast.TableRef{Name: "y"}},
		},
		&sqlast.Select{
			Items: []sqlast.SelectItem{{Expr: &sqlast.CaseWhen{
				Whens: []sqlast.WhenClause{{Cond: &sqlast.IsNull{Operand: sqlast.C("v")}, Result: sqlast.L(variant.Int(0))}},
				Else:  &sqlast.Cast{Operand: sqlast.C("v"), Type: "DOUBLE"},
			}, Alias: "out"}},
			From: &sqlast.TableRef{Name: "t"},
		},
	}
	for _, q := range queries {
		text := sqlast.Render(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed for %s: %v", text, err)
		}
		text2 := sqlast.Render(q2)
		if text != text2 {
			t.Errorf("round trip unstable:\n%s\n%s", text, text2)
		}
	}
}

func TestLineCommentsSkipped(t *testing.T) {
	s := mustParse(t, `SELECT "a" -- trailing comment
		FROM "t" -- another
		WHERE "a" > 1`).(*sqlast.Select)
	if s.Where == nil {
		t.Fatal("comment swallowed the WHERE clause")
	}
}

func TestScientificNumbers(t *testing.T) {
	s := mustParse(t, `SELECT 1.5e3, 2E-2 FROM "t"`).(*sqlast.Select)
	if lit := s.Items[0].Expr.(*sqlast.Lit); lit.Value.AsFloat() != 1500 {
		t.Errorf("1.5e3 = %v", lit.Value)
	}
	if lit := s.Items[1].Expr.(*sqlast.Lit); lit.Value.AsFloat() != 0.02 {
		t.Errorf("2E-2 = %v", lit.Value)
	}
}

func TestQuotedIdentEscapes(t *testing.T) {
	s := mustParse(t, `SELECT "we""ird" FROM "t"`).(*sqlast.Select)
	if cr := s.Items[0].Expr.(*sqlast.ColRef); cr.Name != `we"ird` {
		t.Errorf("ident = %q", cr.Name)
	}
}

func TestLexErrorsPositioned(t *testing.T) {
	_, err := Parse("SELECT &\nFROM t")
	if err == nil {
		t.Fatal("expected lex error")
	}
	perr, ok := err.(*Error)
	if !ok || perr.Line != 1 {
		t.Errorf("err = %#v", err)
	}
	if _, err := Parse(`SELECT "unterminated`); err == nil {
		t.Error("unterminated ident should fail")
	}
}
