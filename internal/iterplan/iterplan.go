// Package iterplan converts a JSONiq expression tree into a tree of
// iterators, mirroring RumbleDB's third compilation phase (§III-A3 of the
// paper). Each expression-tree node becomes exactly one iterator. FLWOR
// clause iterators are chained: the left child points to the preceding
// clause iterator and the right child to the clause's subexpression
// (Figure 3b). Both back-ends — the interpreted runtime and the Snowpark
// translator — consume this tree, and the per-query iterator census
// reproduces Table II.
package iterplan

import (
	"fmt"

	"jsonpark/internal/jsoniq"
)

// Kind classifies an iterator for diagnostics and the census.
type Kind string

// Iterator kinds. FLWOR clause iterators are the seven clause kinds plus
// the synthetic "return" iterator that roots every FLWOR expression.
const (
	KindFor         Kind = "for"
	KindLet         Kind = "let"
	KindWhere       Kind = "where"
	KindGroupBy     Kind = "group-by"
	KindOrderBy     Kind = "order-by"
	KindCount       Kind = "count"
	KindReturn      Kind = "return"
	KindLiteral     Kind = "literal"
	KindVariable    Kind = "variable"
	KindCollection  Kind = "collection"
	KindFieldAccess Kind = "field-access"
	KindUnbox       Kind = "array-unbox"
	KindIndex       Kind = "array-index"
	KindObjectCtor  Kind = "object-constructor"
	KindArrayCtor   Kind = "array-constructor"
	KindComparison  Kind = "comparison"
	KindArithmetic  Kind = "arithmetic"
	KindLogical     Kind = "logical"
	KindRange       Kind = "range"
	KindConcat      Kind = "concat"
	KindUnary       Kind = "unary"
	KindConditional Kind = "conditional"
	KindFunction    Kind = "function-call"
)

// Iterator is one node of the iterator tree.
type Iterator struct {
	Kind     Kind
	IsFLWOR  bool
	Expr     jsoniq.Expr   // the expression node (nil for clause iterators)
	Clause   jsoniq.Clause // the clause (nil for expression iterators)
	Children []*Iterator

	// For FLWOR clause iterators: Left is the preceding clause (nil for the
	// first clause) and Right the attached subexpression(s), following the
	// two-child structure of §III-B2. They alias Children[0]/Children[1:].
	Left  *Iterator
	Right []*Iterator
}

// Build converts an expression tree into an iterator tree.
func Build(e jsoniq.Expr) (*Iterator, error) {
	return buildExpr(e)
}

// MustBuild is Build that panics on error.
func MustBuild(e jsoniq.Expr) *Iterator {
	it, err := Build(e)
	if err != nil {
		panic(err)
	}
	return it
}

func buildExpr(e jsoniq.Expr) (*Iterator, error) {
	switch x := e.(type) {
	case *jsoniq.Literal:
		return &Iterator{Kind: KindLiteral, Expr: e}, nil
	case *jsoniq.VarRef:
		return &Iterator{Kind: KindVariable, Expr: e}, nil
	case *jsoniq.Collection:
		return &Iterator{Kind: KindCollection, Expr: e}, nil
	case *jsoniq.FieldAccess:
		base, err := buildExpr(x.Base)
		if err != nil {
			return nil, err
		}
		return &Iterator{Kind: KindFieldAccess, Expr: e, Children: []*Iterator{base}}, nil
	case *jsoniq.ArrayUnbox:
		base, err := buildExpr(x.Base)
		if err != nil {
			return nil, err
		}
		return &Iterator{Kind: KindUnbox, Expr: e, Children: []*Iterator{base}}, nil
	case *jsoniq.ArrayIndex:
		base, err := buildExpr(x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := buildExpr(x.Index)
		if err != nil {
			return nil, err
		}
		return &Iterator{Kind: KindIndex, Expr: e, Children: []*Iterator{base, idx}}, nil
	case *jsoniq.ObjectCtor:
		it := &Iterator{Kind: KindObjectCtor, Expr: e}
		for _, v := range x.Values {
			c, err := buildExpr(v)
			if err != nil {
				return nil, err
			}
			it.Children = append(it.Children, c)
		}
		return it, nil
	case *jsoniq.ArrayCtor:
		it := &Iterator{Kind: KindArrayCtor, Expr: e}
		for _, v := range x.Items {
			c, err := buildExpr(v)
			if err != nil {
				return nil, err
			}
			it.Children = append(it.Children, c)
		}
		return it, nil
	case *jsoniq.Binary:
		l, err := buildExpr(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := buildExpr(x.Right)
		if err != nil {
			return nil, err
		}
		kind := KindArithmetic
		switch x.Op {
		case jsoniq.OpEq, jsoniq.OpNe, jsoniq.OpLt, jsoniq.OpLe, jsoniq.OpGt, jsoniq.OpGe:
			kind = KindComparison
		case jsoniq.OpAnd, jsoniq.OpOr:
			kind = KindLogical
		case jsoniq.OpTo:
			kind = KindRange
		case jsoniq.OpConcat:
			kind = KindConcat
		}
		return &Iterator{Kind: kind, Expr: e, Children: []*Iterator{l, r}}, nil
	case *jsoniq.Unary:
		o, err := buildExpr(x.Operand)
		if err != nil {
			return nil, err
		}
		return &Iterator{Kind: KindUnary, Expr: e, Children: []*Iterator{o}}, nil
	case *jsoniq.If:
		cond, err := buildExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		then, err := buildExpr(x.Then)
		if err != nil {
			return nil, err
		}
		els, err := buildExpr(x.Else)
		if err != nil {
			return nil, err
		}
		return &Iterator{Kind: KindConditional, Expr: e, Children: []*Iterator{cond, then, els}}, nil
	case *jsoniq.FunctionCall:
		it := &Iterator{Kind: KindFunction, Expr: e}
		for _, a := range x.Args {
			c, err := buildExpr(a)
			if err != nil {
				return nil, err
			}
			it.Children = append(it.Children, c)
		}
		return it, nil
	case *jsoniq.FLWOR:
		return buildFLWOR(x)
	}
	return nil, fmt.Errorf("iterplan: unsupported expression %T", e)
}

// buildFLWOR chains clause iterators left-to-right and roots the chain in a
// return iterator.
func buildFLWOR(f *jsoniq.FLWOR) (*Iterator, error) {
	var prev *Iterator
	link := func(it *Iterator, rights []*Iterator) {
		it.IsFLWOR = true
		it.Left = prev
		it.Right = rights
		if prev != nil {
			it.Children = append(it.Children, prev)
		}
		it.Children = append(it.Children, rights...)
		prev = it
	}
	for _, c := range f.Clauses {
		switch cl := c.(type) {
		case *jsoniq.ForClause:
			in, err := buildExpr(cl.In)
			if err != nil {
				return nil, err
			}
			link(&Iterator{Kind: KindFor, Clause: cl}, []*Iterator{in})
		case *jsoniq.LetClause:
			expr, err := buildExpr(cl.Expr)
			if err != nil {
				return nil, err
			}
			link(&Iterator{Kind: KindLet, Clause: cl}, []*Iterator{expr})
		case *jsoniq.WhereClause:
			cond, err := buildExpr(cl.Cond)
			if err != nil {
				return nil, err
			}
			link(&Iterator{Kind: KindWhere, Clause: cl}, []*Iterator{cond})
		case *jsoniq.GroupByClause:
			var rights []*Iterator
			for _, k := range cl.Keys {
				if k.Expr == nil {
					continue
				}
				keyIt, err := buildExpr(k.Expr)
				if err != nil {
					return nil, err
				}
				rights = append(rights, keyIt)
			}
			link(&Iterator{Kind: KindGroupBy, Clause: cl}, rights)
		case *jsoniq.OrderByClause:
			var rights []*Iterator
			for _, k := range cl.Keys {
				keyIt, err := buildExpr(k.Expr)
				if err != nil {
					return nil, err
				}
				rights = append(rights, keyIt)
			}
			link(&Iterator{Kind: KindOrderBy, Clause: cl}, rights)
		case *jsoniq.CountClause:
			link(&Iterator{Kind: KindCount, Clause: cl}, nil)
		default:
			return nil, fmt.Errorf("iterplan: unsupported clause %T", c)
		}
	}
	ret, err := buildExpr(f.Return)
	if err != nil {
		return nil, err
	}
	root := &Iterator{Kind: KindReturn, Expr: f}
	root.IsFLWOR = true
	root.Left = prev
	root.Right = []*Iterator{ret}
	if prev != nil {
		root.Children = append(root.Children, prev)
	}
	root.Children = append(root.Children, ret)
	return root, nil
}

// Census counts iterators, split into FLWOR clause iterators and the rest —
// the classification of the paper's Table II.
type CensusResult struct {
	FLWOR int
	Other int
}

// Total returns the overall iterator count.
func (c CensusResult) Total() int { return c.FLWOR + c.Other }

// Census walks the tree and counts each iterator exactly once.
func Census(root *Iterator) CensusResult {
	var res CensusResult
	seen := make(map[*Iterator]bool)
	var walk func(it *Iterator)
	walk = func(it *Iterator) {
		if it == nil || seen[it] {
			return
		}
		seen[it] = true
		if it.IsFLWOR {
			res.FLWOR++
		} else {
			res.Other++
		}
		for _, c := range it.Children {
			walk(c)
		}
	}
	walk(root)
	return res
}
