package iterplan

import (
	"testing"

	"jsonpark/internal/jsoniq"
)

func build(t *testing.T, src string) *Iterator {
	t.Helper()
	it, err := Build(jsoniq.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func TestListing1IteratorStructure(t *testing.T) {
	// Figure 3 of the paper: the where clause has a left child (the for
	// iterator) and a right child (its comparison subexpression).
	root := build(t, `for $jet in collection("adl").Jet[]
		where abs($jet.eta) lt 1
		return $jet.pt`)
	if root.Kind != KindReturn || !root.IsFLWOR {
		t.Fatalf("root = %v", root.Kind)
	}
	where := root.Left
	if where == nil || where.Kind != KindWhere {
		t.Fatalf("return.left = %+v", where)
	}
	if where.Left == nil || where.Left.Kind != KindFor {
		t.Fatalf("where.left = %+v", where.Left)
	}
	if len(where.Right) != 1 || where.Right[0].Kind != KindComparison {
		t.Fatalf("where.right = %+v", where.Right)
	}
	cmp := where.Right[0]
	if len(cmp.Children) != 2 {
		t.Fatalf("comparison children = %d", len(cmp.Children))
	}
	if cmp.Children[0].Kind != KindFunction {
		t.Errorf("comparison left child = %v, want function-call (abs)", cmp.Children[0].Kind)
	}
	if cmp.Children[1].Kind != KindLiteral {
		t.Errorf("comparison right child = %v, want literal", cmp.Children[1].Kind)
	}
}

func TestCensusCountsEachIteratorOnce(t *testing.T) {
	root := build(t, `for $jet in collection("adl").Jet[]
		where abs($jet.eta) lt 1
		return $jet.pt`)
	c := Census(root)
	// FLWOR: for, where, return = 3.
	if c.FLWOR != 3 {
		t.Errorf("FLWOR = %d, want 3", c.FLWOR)
	}
	// Other: collection, field-access(Jet), unbox, abs-call, var($jet),
	// field(eta), literal(1), comparison, field(pt), var($jet) = 10.
	if c.Other != 10 {
		t.Errorf("Other = %d, want 10", c.Other)
	}
	if c.Total() != 13 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestCensusGrowsWithComplexity(t *testing.T) {
	simple := Census(build(t, `for $e in collection("c") return $e.a`))
	complex := Census(build(t, `for $e in collection("c")
		let $x := (for $m in $e.ms[] where $m.v gt 1 return $m)
		group by $k := $e.a
		order by $k
		return {"k": $k, "n": count($e)}`))
	if complex.Total() <= simple.Total() {
		t.Errorf("complex (%d) should exceed simple (%d)", complex.Total(), simple.Total())
	}
	if complex.FLWOR <= simple.FLWOR {
		t.Errorf("complex FLWOR (%d) should exceed simple (%d)", complex.FLWOR, simple.FLWOR)
	}
}

func TestNestedFLWORChained(t *testing.T) {
	root := build(t, `for $e in collection("c")
		let $f := (for $m in $e.ms[] return $m)
		return $f`)
	let := root.Left
	if let.Kind != KindLet {
		t.Fatalf("clause = %v", let.Kind)
	}
	if len(let.Right) != 1 || let.Right[0].Kind != KindReturn {
		t.Fatalf("let subexpression should be a nested FLWOR return iterator, got %+v", let.Right)
	}
}

func TestAllExpressionKinds(t *testing.T) {
	root := build(t, `for $e in collection("c")
		count $c
		return {"a": [1, 2], "b": -$e.x, "c": if ($e.y) then 1 else 2,
		        "d": $e.arr[[1]], "e": 1 to 3, "f": "x" || "y", "g": $e.p and true}`)
	kinds := map[Kind]bool{}
	var walk func(*Iterator)
	walk = func(it *Iterator) {
		kinds[it.Kind] = true
		for _, ch := range it.Children {
			walk(ch)
		}
	}
	walk(root)
	for _, want := range []Kind{KindCount, KindObjectCtor, KindArrayCtor, KindUnary,
		KindConditional, KindIndex, KindRange, KindConcat, KindLogical, KindLiteral} {
		if !kinds[want] {
			t.Errorf("missing iterator kind %s", want)
		}
	}
}

func TestBuildGroupOrderRights(t *testing.T) {
	root := build(t, `for $e in collection("c")
		group by $k := $e.a, $j := $e.b
		order by $k descending, $j
		return $k`)
	order := root.Left
	if order.Kind != KindOrderBy || len(order.Right) != 2 {
		t.Fatalf("order by = %+v", order)
	}
	group := order.Left
	if group.Kind != KindGroupBy || len(group.Right) != 2 {
		t.Fatalf("group by = %+v", group)
	}
}
