// Command obssmoke is the observability smoke test behind `make obs-smoke`:
// it boots a real jsqd with slow-query capture armed and a query-log sink,
// runs the same query four times over HTTP with a streaming append (POST
// /load) between the second and third, and asserts the observability
// contract end to end — four parseable qlog JSON records carrying the
// required keys, plan-cache and result-cache hits flipping
// false→true→false→true across the append (the new partition invalidates
// both caches, then they re-warm), a populated /debug/slow, and a live
// /metrics exposition including the plan-cache and result-cache counters.
// It exercises the same binary and flags an operator would use, not the
// test harness.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// startupWait bounds how long the freshly built jsqd may take to listen.
const startupWait = 30 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	data := filepath.Join(dir, "data.jsonl")
	docs := `{"id": 1, "items": [{"qty": 2}]}` + "\n" + `{"id": 2, "items": [{"qty": 5}]}` + "\n"
	if err := os.WriteFile(data, []byte(docs), 0o644); err != nil {
		return err
	}

	// go run would put the server behind an intermediary process that
	// orphans it on kill; build a real binary and manage it directly.
	bin := filepath.Join(dir, "jsqd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/jsqd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building jsqd: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	qlogPath := filepath.Join(dir, "query.log")
	srv := exec.Command(bin,
		"-addr", addr,
		"-data", data,
		"-collection", "smoke",
		"-slow-query-ms", "0",
		"-qlog", qlogPath,
	)
	srv.Stdout, srv.Stderr = os.Stderr, os.Stderr
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		_ = srv.Process.Signal(syscall.SIGTERM)
		_, _ = srv.Process.Wait()
	}()

	base := "http://" + addr
	if err := waitReady(base + "/metrics"); err != nil {
		return err
	}

	// The same query four times with a streaming append in the middle: runs
	// 1-2 warm both caches, the append seals a new partition (invalidating
	// the result cache precisely and the plan cache via the catalog fence),
	// and runs 3-4 must re-execute then re-hit.
	const query = `{"query": "for $o in collection(\"smoke\") order by $o.id return $o.id"}`
	runQuery := func(i int) error {
		status, _, err := postJSON(base+"/query", query)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("POST /query #%d: status %d", i, status)
		}
		return nil
	}
	for i := 1; i <= 2; i++ {
		if err := runQuery(i); err != nil {
			return err
		}
	}
	status, body, err := postJSON(base+"/load",
		`{"collection": "smoke", "documents": [{"id": 3, "items": [{"qty": 9}]}]}`)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("POST /load: status %d: %s", status, body)
	}
	for i := 3; i <= 4; i++ {
		if err := runQuery(i); err != nil {
			return err
		}
	}

	if err := checkQlog(qlogPath); err != nil {
		return err
	}
	if err := checkGet(base+"/debug/slow", `"trace_id"`); err != nil {
		return err
	}
	if err := checkGet(base+"/metrics", "jsonpark_query_phase_seconds"); err != nil {
		return err
	}
	if err := checkCounterAtLeast(base+"/metrics", "jsonpark_plan_cache_hits_total", 1); err != nil {
		return err
	}
	return checkCounterAtLeast(base+"/metrics", "jsonpark_result_cache_hits_total", 2)
}

// checkQlog asserts the query log holds exactly four parseable "query"
// records with the schema jsqd promises, and that both cache-hit flags
// follow the miss/hit/miss/hit pattern around the mid-run append.
func checkQlog(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("query log: %w", err)
	}
	var records []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("query log line is not JSON: %v\n%s", err, line)
		}
		if rec["event"] == "query" {
			records = append(records, rec)
		}
	}
	if len(records) != 4 {
		return fmt.Errorf("query log holds %d query records, want 4:\n%s", len(records), raw)
	}
	for i, rec := range records {
		for _, key := range []string{"trace_id", "fingerprint", "status",
			"cache_hit", "result_cache_hit", "parse_us", "plan_us",
			"sqlgen_us", "exec_us", "total_us", "rows", "mem_peak_bytes",
			"spill_bytes", "typed_cols", "fallback_cols", "disk_reads"} {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("query record #%d missing %q: %v", i+1, key, rec)
			}
		}
		if rec["status"] != "ok" {
			return fmt.Errorf("query record #%d status = %v, want ok", i+1, rec["status"])
		}
	}
	// Result cache: runs 1 and 3 execute (fresh server, then the appended
	// partition invalidates the entry); runs 2 and 4 hit. Plan cache: run 3
	// still reuses the compiled template (the plan is data-independent and
	// the buffered rows only seal at bind time, after plan lookup); the seal
	// then bumps the catalog fence, so run 4 recompiles.
	want := map[string][]bool{
		"result_cache_hit": {false, true, false, true},
		"cache_hit":        {false, true, true, false},
	}
	for key, pattern := range want {
		for i, w := range pattern {
			if hit, _ := records[i][key].(bool); hit != w {
				return fmt.Errorf("query record #%d %s = %v, want %v: %v",
					i+1, key, hit, w, records[i])
			}
		}
	}
	// The third run must see the appended document: rows grows from 2 to 3.
	if rows, _ := records[2]["rows"].(float64); rows != 3 {
		return fmt.Errorf("post-append query returned %v rows, want 3: %v", records[2]["rows"], records[2])
	}
	return nil
}

// checkCounterAtLeast asserts /metrics exposes the named counter with at
// least min recorded.
func checkCounterAtLeast(url, name string, min float64) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("malformed metric line: %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("malformed metric value: %q", line)
		}
		if v < min {
			return fmt.Errorf("%s = %v, want >= %v", name, v, min)
		}
		return nil
	}
	return fmt.Errorf("GET %s: body lacks %s", url, name)
}

// checkGet asserts the URL answers 200 with a body containing want.
func checkGet(url, want string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(body), want) {
		return fmt.Errorf("GET %s: body lacks %q", url, want)
	}
	return nil
}

func postJSON(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(out), nil
}

// waitReady polls until the server answers, or the startup budget runs out.
func waitReady(url string) error {
	deadline := time.Now().Add(startupWait)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("jsqd did not become ready within %s", startupWait)
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// server to bind. The tiny claim/reuse window is acceptable for a smoke
// test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", err
	}
	return addr, nil
}
