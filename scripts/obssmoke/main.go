// Command obssmoke is the observability smoke test behind `make obs-smoke`:
// it boots a real jsqd with slow-query capture armed and a query-log sink,
// runs the same query twice over HTTP, and asserts the observability
// contract end to end — two parseable qlog JSON records carrying the
// required keys with the second marked as a plan-cache hit, a populated
// /debug/slow, and a live /metrics exposition including the plan-cache
// counters. It exercises the same binary and flags an operator would use,
// not the test harness.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// startupWait bounds how long the freshly built jsqd may take to listen.
const startupWait = 30 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	data := filepath.Join(dir, "data.jsonl")
	docs := `{"id": 1, "items": [{"qty": 2}]}` + "\n" + `{"id": 2, "items": [{"qty": 5}]}` + "\n"
	if err := os.WriteFile(data, []byte(docs), 0o644); err != nil {
		return err
	}

	// go run would put the server behind an intermediary process that
	// orphans it on kill; build a real binary and manage it directly.
	bin := filepath.Join(dir, "jsqd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/jsqd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building jsqd: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	qlogPath := filepath.Join(dir, "query.log")
	srv := exec.Command(bin,
		"-addr", addr,
		"-data", data,
		"-collection", "smoke",
		"-slow-query-ms", "0",
		"-qlog", qlogPath,
	)
	srv.Stdout, srv.Stderr = os.Stderr, os.Stderr
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		_ = srv.Process.Signal(syscall.SIGTERM)
		_, _ = srv.Process.Wait()
	}()

	base := "http://" + addr
	if err := waitReady(base + "/metrics"); err != nil {
		return err
	}

	// The same query twice: the second run must be served from the
	// prepared-plan cache and say so in its qlog record.
	const query = `{"query": "for $o in collection(\"smoke\") order by $o.id return $o.id"}`
	for i := 0; i < 2; i++ {
		status, _, err := postJSON(base+"/query", query)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("POST /query #%d: status %d", i+1, status)
		}
	}

	if err := checkQlog(qlogPath); err != nil {
		return err
	}
	if err := checkGet(base+"/debug/slow", `"trace_id"`); err != nil {
		return err
	}
	if err := checkGet(base+"/metrics", "jsonpark_query_phase_seconds"); err != nil {
		return err
	}
	return checkPlanCacheMetric(base + "/metrics")
}

// checkQlog asserts the query log holds exactly two parseable "query"
// records with the schema jsqd promises, the second marked as a plan-cache
// hit.
func checkQlog(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("query log: %w", err)
	}
	var records []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("query log line is not JSON: %v\n%s", err, line)
		}
		if rec["event"] == "query" {
			records = append(records, rec)
		}
	}
	if len(records) != 2 {
		return fmt.Errorf("query log holds %d query records, want 2:\n%s", len(records), raw)
	}
	for i, rec := range records {
		for _, key := range []string{"trace_id", "fingerprint", "status",
			"cache_hit", "parse_us", "plan_us", "sqlgen_us", "exec_us",
			"total_us", "rows", "mem_peak_bytes", "spill_bytes",
			"typed_cols", "fallback_cols", "disk_reads"} {
			if _, ok := rec[key]; !ok {
				return fmt.Errorf("query record #%d missing %q: %v", i+1, key, rec)
			}
		}
		if rec["status"] != "ok" {
			return fmt.Errorf("query record #%d status = %v, want ok", i+1, rec["status"])
		}
	}
	if hit, _ := records[0]["cache_hit"].(bool); hit {
		return fmt.Errorf("first query record claims cache_hit=true: %v", records[0])
	}
	if hit, _ := records[1]["cache_hit"].(bool); !hit {
		return fmt.Errorf("second query record lacks cache_hit=true: %v", records[1])
	}
	return nil
}

// checkPlanCacheMetric asserts /metrics exposes the plan-cache hit counter
// with at least one hit recorded.
func checkPlanCacheMetric(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "jsonpark_plan_cache_hits_total") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("malformed metric line: %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("malformed metric value: %q", line)
		}
		if v < 1 {
			return fmt.Errorf("jsonpark_plan_cache_hits_total = %v, want >= 1", v)
		}
		return nil
	}
	return fmt.Errorf("GET %s: body lacks jsonpark_plan_cache_hits_total", url)
}

// checkGet asserts the URL answers 200 with a body containing want.
func checkGet(url, want string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(body), want) {
		return fmt.Errorf("GET %s: body lacks %q", url, want)
	}
	return nil
}

func postJSON(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(out), nil
}

// waitReady polls until the server answers, or the startup budget runs out.
func waitReady(url string) error {
	deadline := time.Now().Add(startupWait)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("jsqd did not become ready within %s", startupWait)
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// server to bind. The tiny claim/reuse window is acceptable for a smoke
// test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", err
	}
	return addr, nil
}
