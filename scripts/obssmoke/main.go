// Command obssmoke is the observability smoke test behind `make obs-smoke`:
// it boots a real jsqd with slow-query capture armed and a query-log sink,
// runs one query over HTTP, and asserts the observability contract end to
// end — exactly one parseable qlog JSON record carrying the required keys,
// a populated /debug/slow, and a live /metrics exposition. It exercises the
// same binary and flags an operator would use, not the test harness.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// startupWait bounds how long the freshly built jsqd may take to listen.
const startupWait = 30 * time.Second

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "obssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("obssmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "obssmoke")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	data := filepath.Join(dir, "data.jsonl")
	docs := `{"id": 1, "items": [{"qty": 2}]}` + "\n" + `{"id": 2, "items": [{"qty": 5}]}` + "\n"
	if err := os.WriteFile(data, []byte(docs), 0o644); err != nil {
		return err
	}

	// go run would put the server behind an intermediary process that
	// orphans it on kill; build a real binary and manage it directly.
	bin := filepath.Join(dir, "jsqd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/jsqd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building jsqd: %w", err)
	}

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	qlogPath := filepath.Join(dir, "query.log")
	srv := exec.Command(bin,
		"-addr", addr,
		"-data", data,
		"-collection", "smoke",
		"-slow-query-ms", "0",
		"-qlog", qlogPath,
	)
	srv.Stdout, srv.Stderr = os.Stderr, os.Stderr
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		_ = srv.Process.Signal(syscall.SIGTERM)
		_, _ = srv.Process.Wait()
	}()

	base := "http://" + addr
	if err := waitReady(base + "/metrics"); err != nil {
		return err
	}

	status, _, err := postJSON(base+"/query",
		`{"query": "for $o in collection(\"smoke\") order by $o.id return $o.id"}`)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("POST /query: status %d", status)
	}

	if err := checkQlog(qlogPath); err != nil {
		return err
	}
	if err := checkGet(base+"/debug/slow", `"trace_id"`); err != nil {
		return err
	}
	return checkGet(base+"/metrics", "jsonpark_query_phase_seconds")
}

// checkQlog asserts the query log holds exactly one parseable "query"
// record with the schema jsqd promises.
func checkQlog(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("query log: %w", err)
	}
	var records []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("query log line is not JSON: %v\n%s", err, line)
		}
		if rec["event"] == "query" {
			records = append(records, rec)
		}
	}
	if len(records) != 1 {
		return fmt.Errorf("query log holds %d query records, want 1:\n%s", len(records), raw)
	}
	rec := records[0]
	for _, key := range []string{"trace_id", "fingerprint", "status",
		"parse_us", "plan_us", "sqlgen_us", "exec_us", "total_us",
		"rows", "mem_peak_bytes", "spill_bytes",
		"typed_cols", "fallback_cols", "disk_reads"} {
		if _, ok := rec[key]; !ok {
			return fmt.Errorf("query record missing %q: %v", key, rec)
		}
	}
	if rec["status"] != "ok" {
		return fmt.Errorf("query record status = %v, want ok", rec["status"])
	}
	return nil
}

// checkGet asserts the URL answers 200 with a body containing want.
func checkGet(url, want string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if !strings.Contains(string(body), want) {
		return fmt.Errorf("GET %s: body lacks %q", url, want)
	}
	return nil
}

func postJSON(url, body string) (int, string, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	out, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(out), nil
}

// waitReady polls until the server answers, or the startup budget runs out.
func waitReady(url string) error {
	deadline := time.Now().Add(startupWait)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("jsqd did not become ready within %s", startupWait)
}

// freeAddr reserves an ephemeral localhost port and releases it for the
// server to bind. The tiny claim/reuse window is acceptable for a smoke
// test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp4", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		return "", err
	}
	return addr, nil
}
