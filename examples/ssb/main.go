// Relational example: JSONiq is not bound to nested data (§V-G of the
// paper). This example loads a Star Schema Benchmark database and runs a
// star-join aggregation written in JSONiq, comparing plan and timing with
// the handwritten SQL reference.
package main

import (
	"fmt"
	"log"

	"jsonpark/internal/engine"
	"jsonpark/internal/snowpark"
	"jsonpark/internal/ssb"
)

func main() {
	eng := engine.New()
	tabs := ssb.Generate(7, ssb.SizesForScaleFactor(1))
	if err := tabs.Load(eng); err != nil {
		log.Fatal(err)
	}
	sess := snowpark.NewSession(eng)

	q, _ := ssb.ByID("q2.1")
	fmt.Println("JSONiq:")
	fmt.Println(q.JSONiq)

	sql, err := ssb.TranslateSQL(sess, q)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := eng.Explain(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine plan of the translation (note the hash equi-joins):")
	fmt.Print(plan)

	rows, genRes, err := ssb.RunTranslated(sess, q)
	if err != nil {
		log.Fatal(err)
	}
	_, handRes, err := ssb.RunHandwritten(eng, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntranslated:  %d rows in %v (compile %v)\n",
		len(rows), genRes.Metrics.ExecTime, genRes.Metrics.CompileTime)
	fmt.Printf("handwritten: %d rows in %v (compile %v)\n",
		handRes.Metrics.RowsReturned, handRes.Metrics.ExecTime, handRes.Metrics.CompileTime)

	fmt.Println("\nfirst rows (translated):")
	for i, row := range genRes.Rows {
		if i == 5 {
			break
		}
		fmt.Println(" ", row[0].JSON())
	}
}
