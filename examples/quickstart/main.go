// Quickstart: load nested JSON into an in-memory warehouse, run a JSONiq
// query, and inspect the single SQL query it translates to.
package main

import (
	"fmt"
	"log"

	"jsonpark"
)

func main() {
	w := jsonpark.Open()

	// Collections are staged with one column per top-level field (the
	// multi-column VARIANT staging); no schema is required for the nested
	// parts.
	if err := w.CreateCollection("orders", []string{"id", "customer", "items"}); err != nil {
		log.Fatal(err)
	}
	docs := []string{
		`{"id": 1, "customer": "ada",  "items": [{"sku": "apple", "qty": 2, "price": 1.5}, {"sku": "pear", "qty": 1, "price": 2.0}]}`,
		`{"id": 2, "customer": "bob",  "items": []}`,
		`{"id": 3, "customer": "ada",  "items": [{"sku": "plum", "qty": 5, "price": 0.5}]}`,
	}
	for _, d := range docs {
		if err := w.LoadJSON("orders", d); err != nil {
			log.Fatal(err)
		}
	}

	query := `
		for $o in collection("orders")
		for $i in $o.items[]
		where $i.qty gt 1
		return {"order": $o.id, "sku": $i.sku, "value": $i.qty * $i.price}`

	// The query translates to one native SQL string...
	sql, err := w.Translate(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated SQL:")
	fmt.Println(" ", sql)

	// ...which the embedded columnar engine executes.
	res, err := w.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresults:")
	for _, row := range res.Rows {
		fmt.Println(" ", row[0].JSON())
	}
	fmt.Printf("\ncompile=%v exec=%v scanned=%d bytes\n",
		res.Metrics.CompileTime, res.Metrics.ExecTime, res.Metrics.BytesScanned)
}
