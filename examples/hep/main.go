// HEP analysis example: the paper's motivating workload. Generates
// synthetic collision events with nested particle arrays, then runs an
// ADL-style dimuon analysis — a nested query with combinatorics, physics
// formulas and a histogram — through the JSONiq→SQL translation, and
// cross-checks the result against the interpreted baseline.
package main

import (
	"fmt"
	"log"

	"jsonpark"

	"jsonpark/internal/hepdata"
)

func main() {
	w := jsonpark.Open()
	if err := w.CreateCollection("adl", hepdata.Columns()); err != nil {
		log.Fatal(err)
	}
	for _, ev := range hepdata.Events(42, 5000) {
		if err := w.LoadObject("adl", ev); err != nil {
			log.Fatal(err)
		}
	}

	// MET histogram of events containing an opposite-charge dimuon with
	// invariant mass near the Z boson (ADL Q5).
	query := `
		for $e in collection("adl")
		where exists(
		  for $i in 1 to size($e.Muon)
		  for $j in 1 to size($e.Muon)
		  where $i lt $j
		  let $m1 := $e.Muon[[$i]]
		  let $m2 := $e.Muon[[$j]]
		  where $m1.charge * $m2.charge lt 0
		  let $mass := sqrt(2 * $m1.pt * $m2.pt *
		       (cosh($m1.eta - $m2.eta) - cos($m1.phi - $m2.phi)))
		  where $mass gt 60 and $mass lt 120
		  return 1
		)
		group by $bin := floor($e.MET.pt div 10.0) * 10.0
		order by $bin
		return {"bin": $bin, "count": count($e)}`

	for _, strat := range []jsonpark.Strategy{jsonpark.StrategyKeepFlag, jsonpark.StrategyJoin} {
		res, err := w.Query(query, jsonpark.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %v: %d bins, compile=%v exec=%v scanned=%d bytes\n",
			strat, len(res.Rows), res.Metrics.CompileTime, res.Metrics.ExecTime,
			res.Metrics.BytesScanned)
	}

	res, err := w.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMET histogram (dimuon events):")
	for _, row := range res.Rows {
		o := row[0]
		bar := ""
		for i := int64(0); i < o.Field("count").AsInt(); i += 5 {
			bar += "#"
		}
		fmt.Printf("  %6.0f %5d %s\n", o.Field("bin").AsFloat(), o.Field("count").AsInt(), bar)
	}

	// Cross-check against the interpreted iterator back-end.
	interp, err := w.QueryInterpreted(query)
	if err != nil {
		log.Fatal(err)
	}
	if len(interp) != len(res.Rows) {
		log.Fatalf("backends disagree: %d vs %d bins", len(interp), len(res.Rows))
	}
	fmt.Println("\ninterpreted back-end agrees on", len(interp), "bins")
}
