// Nested business data example: demonstrates the erroneous object
// elimination problem (§IV-C of the paper) and both published solutions.
// An order with no qualifying items must still appear with an empty result
// — naive flatten+filter+regroup would silently drop it.
package main

import (
	"fmt"
	"log"

	"jsonpark"
)

func main() {
	w := jsonpark.Open()
	if err := w.CreateCollection("orders", []string{"id", "region", "items"}); err != nil {
		log.Fatal(err)
	}
	for _, d := range []string{
		`{"id": 1, "region": "EU", "items": [{"sku": "a", "qty": 10, "price": 3.0}, {"sku": "b", "qty": 1, "price": 50.0}]}`,
		`{"id": 2, "region": "EU", "items": []}`,
		`{"id": 3, "region": "US", "items": [{"sku": "c", "qty": 2, "price": 5.0}]}`,
		`{"id": 4, "region": "US", "items": [{"sku": "d", "qty": 1, "price": 1.0}]}`,
	} {
		if err := w.LoadJSON("orders", d); err != nil {
			log.Fatal(err)
		}
	}

	// Per order: the skus of "large" line items (qty >= 2). Orders 2 (empty
	// array) and 4 (all items fail) must survive with empty arrays.
	query := `
		for $o in collection("orders")
		let $large := (
		  for $i in $o.items[]
		  where $i.qty ge 2
		  return $i.sku
		)
		order by $o.id
		return {"order": $o.id, "large": $large, "n": size($large)}`

	for _, strat := range []jsonpark.Strategy{jsonpark.StrategyKeepFlag, jsonpark.StrategyJoin} {
		fmt.Printf("--- strategy: %v ---\n", strat)
		sql, err := w.Translate(query, jsonpark.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("SQL length:", len(sql), "chars")
		items, err := w.QueryItems(query, jsonpark.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		for _, it := range items {
			fmt.Println(" ", it.JSON())
		}
		if len(items) != 4 {
			log.Fatalf("object elimination bug: only %d of 4 orders survived", len(items))
		}
	}

	// The interpreted back-end implements JSONiq semantics directly and
	// serves as the ground truth.
	interp, err := w.QueryInterpreted(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- interpreted ground truth ---")
	for _, it := range interp {
		fmt.Println(" ", it.JSON())
	}
}
