package jsonpark

import (
	"testing"
)

// eliminationWarehouse loads a dataset crafted so nested sub-queries produce
// erroneous objects (parent rows whose nested filter matches nothing) and
// flatten hits empty arrays — the §IV-C cases both elimination strategies
// must handle.
func eliminationWarehouse(t *testing.T, opts ...OpenOption) *Warehouse {
	t.Helper()
	w := Open(opts...)
	if err := w.CreateCollection("orders", []string{"id", "customer", "items"}); err != nil {
		t.Fatal(err)
	}
	docs := []string{
		`{"id": 1, "customer": "ada", "items": [{"sku": "apple", "qty": 2}, {"sku": "pear", "qty": 7}]}`,
		`{"id": 2, "customer": "bob", "items": []}`,
		`{"id": 3, "customer": "cyd", "items": [{"sku": "plum", "qty": 1}]}`,
		`{"id": 4, "customer": "dee", "items": [{"sku": "fig", "qty": 9}, {"sku": "date", "qty": 3}]}`,
		`{"id": 5, "customer": "eve", "items": []}`,
	}
	for _, d := range docs {
		if err := w.LoadJSON("orders", d); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestEliminationStrategiesAcrossBatchSizes checks erroneous-object
// elimination under the vectorized executor: the nested where matches no
// item for orders 2, 3 and 5, so the KEEP-flag and JOIN strategies both
// have to eliminate spurious rows while keeping every parent. The expected
// output is pinned as a golden, and batch sizes 1 and 1024 (sequential and
// parallel) must agree with it exactly.
func TestEliminationStrategiesAcrossBatchSizes(t *testing.T) {
	query := `
		for $o in collection("orders")
		let $big := [ for $i in $o.items[] where $i.qty ge 5 return $i.sku ]
		order by $o.id
		return {"id": $o.id, "big": $big}`
	// Golden pinned from the row-at-a-time seed executor; the interpreted
	// runtime produces the same objects.
	golden := `{"id":1,"big":[["pear"]]}` +
		`{"id":2,"big":[[]]}` +
		`{"id":3,"big":[[]]}` +
		`{"id":4,"big":[["fig"]]}` +
		`{"id":5,"big":[[]]}`
	for _, cfg := range []struct {
		name string
		opts []OpenOption
	}{
		{"bs1-seq", []OpenOption{WithBatchSize(1), WithParallelism(1)}},
		{"bs1024-seq", []OpenOption{WithBatchSize(1024), WithParallelism(1)}},
		{"bs1024-par", []OpenOption{WithBatchSize(1024)}},
	} {
		w := eliminationWarehouse(t, cfg.opts...)
		for _, strat := range []Strategy{StrategyKeepFlag, StrategyJoin} {
			items, err := w.QueryItems(query, WithStrategy(strat))
			if err != nil {
				t.Fatalf("%s strategy %v: %v", cfg.name, strat, err)
			}
			got := ""
			for _, it := range items {
				got += it.JSON()
			}
			if got != golden {
				t.Errorf("%s strategy %v:\ngot:  %s\nwant: %s", cfg.name, strat, got, golden)
			}
		}
	}
}

// TestEmptyArrayFlattenAcrossBatchSizes pins empty-array flatten behaviour:
// inner flatten drops the order, outer-style aggregation keeps it — and
// every batch size must agree byte for byte.
func TestEmptyArrayFlattenAcrossBatchSizes(t *testing.T) {
	flat := `
		for $o in collection("orders")
		for $i in $o.items[]
		return {"id": $o.id, "sku": $i.sku}`
	flatGolden := `{"id":1,"sku":"apple"}{"id":1,"sku":"pear"}` +
		`{"id":3,"sku":"plum"}{"id":4,"sku":"fig"}{"id":4,"sku":"date"}`
	counts := `
		for $o in collection("orders")
		let $n := count(for $i in $o.items[] return $i)
		order by $o.id
		return {"id": $o.id, "n": $n}`
	countsGolden := `{"id":1,"n":2}{"id":2,"n":0}{"id":3,"n":1}{"id":4,"n":2}{"id":5,"n":0}`
	for _, cfg := range []struct {
		name string
		opts []OpenOption
	}{
		{"bs1-seq", []OpenOption{WithBatchSize(1), WithParallelism(1)}},
		{"bs1024-seq", []OpenOption{WithBatchSize(1024), WithParallelism(1)}},
		{"bs1024-par", []OpenOption{WithBatchSize(1024)}},
	} {
		w := eliminationWarehouse(t, cfg.opts...)
		for _, tc := range []struct{ q, golden string }{{flat, flatGolden}, {counts, countsGolden}} {
			items, err := w.QueryItems(tc.q)
			if err != nil {
				t.Fatalf("%s: %v", cfg.name, err)
			}
			got := ""
			for _, it := range items {
				got += it.JSON()
			}
			if got != tc.golden {
				t.Errorf("%s:\ngot:  %s\nwant: %s", cfg.name, got, tc.golden)
			}
		}
	}
}

// TestWarehouseOptionsExposed sanity-checks the functional options plumb
// through to the engine.
func TestWarehouseOptionsExposed(t *testing.T) {
	w := Open(WithBatchSize(64), WithParallelism(2))
	if got := w.Engine().BatchSize(); got != 64 {
		t.Errorf("BatchSize = %d", got)
	}
	if got := w.Engine().Parallelism(); got != 2 {
		t.Errorf("Parallelism = %d", got)
	}
	// Defaults: non-zero.
	d := Open()
	if d.Engine().BatchSize() <= 0 || d.Engine().Parallelism() <= 0 {
		t.Errorf("defaults: bs=%d par=%d", d.Engine().BatchSize(), d.Engine().Parallelism())
	}
}
