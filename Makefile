GO ?= go

.PHONY: all build test vet lint lint-fixtures race stress fuzz-smoke obs-smoke check bench bench-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# jsqlint (cmd/jsqlint, internal/lint) machine-checks the executor's
# invariants that vet and the type system cannot: kernel-output aliasing,
# operator Close lifecycle, span lifecycle, selection-vector access
# discipline, locks held across NextBatch, discarded load-bearing errors,
# cancellation polling in absorbing loops, memory-governance charging,
# TypedCol view escapes, spill-run lifecycles, and raw null-bitmap access.
# `jsqlint -list` names the analyzers; see DESIGN.md "Invariants".
lint:
	$(GO) run ./cmd/jsqlint -stats ./...

# lint-fixtures runs only the analyzers' golden-fixture harness — the fast
# inner loop when developing an analyzer.
lint-fixtures:
	$(GO) test -run TestFixtures ./internal/lint/

# The observability substrate (internal/obsv) is shared by concurrent server
# queries; the race detector run is the gate that keeps it race-clean.
race:
	$(GO) test -race ./...

# The early-close stress test hammers the parallel pipeline breakers
# (aggregate, join build, sort) with LIMIT-truncated and abandoned queries;
# under the race detector it is the gate for the worker-shutdown paths.
stress:
	$(GO) test -race -run 'Stress' -count 2 ./internal/engine/

# fuzz-smoke gives each differential fuzzer a short budget so CI explores
# the plan-generator space beyond the checked-in seed corpus. The seeds
# themselves already run as unit tests under `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzPlanDiff' -fuzztime 30s ./internal/engine/

# obs-smoke boots a real jsqd with slow-query capture and a qlog sink, runs
# one query over HTTP, and asserts the observability contract end to end:
# one parseable query-log JSON record, a populated /debug/slow, and a live
# /metrics exposition.
obs-smoke:
	$(GO) run ./scripts/obssmoke

check: build vet lint test race

bench:
	$(GO) run ./cmd/adlbench -events 2000 -runs 1 -json BENCH_ADL.json
	$(GO) run ./cmd/ssbbench -sf 1 -sfs 0.5,1 -runs 1 -json BENCH_SSB.json

# bench-smoke compiles and single-iterates every Go benchmark so CI catches
# benchmark bit-rot without paying for real measurement runs.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

clean:
	rm -f BENCH_ADL.json BENCH_SSB.json
