GO ?= go

.PHONY: all build test vet lint race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# jsqlint (cmd/jsqlint, internal/lint) machine-checks the executor's
# invariants that vet and the type system cannot: kernel-output aliasing,
# operator Close lifecycle, span lifecycle, selection-vector access
# discipline, locks held across NextBatch, and discarded load-bearing
# errors. `jsqlint -list` names the analyzers; see DESIGN.md "Invariants".
lint:
	$(GO) run ./cmd/jsqlint ./...

# The observability substrate (internal/obsv) is shared by concurrent server
# queries; the race detector run is the gate that keeps it race-clean.
race:
	$(GO) test -race ./...

check: build vet lint test race

bench:
	$(GO) run ./cmd/adlbench -events 2000 -runs 1 -json BENCH_ADL.json
	$(GO) run ./cmd/ssbbench -sf 1 -sfs 0.5,1 -runs 1 -json BENCH_SSB.json

clean:
	rm -f BENCH_ADL.json BENCH_SSB.json
