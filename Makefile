GO ?= go

.PHONY: all build test vet race check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The observability substrate (internal/obsv) is shared by concurrent server
# queries; the race detector run is the gate that keeps it race-clean.
race:
	$(GO) test -race ./...

check: build vet test race

bench:
	$(GO) run ./cmd/adlbench -events 2000 -runs 1 -json BENCH_ADL.json
	$(GO) run ./cmd/ssbbench -sf 1 -sfs 0.5,1 -runs 1 -json BENCH_SSB.json

clean:
	rm -f BENCH_ADL.json BENCH_SSB.json
