module jsonpark

go 1.22
