// Command adlbench regenerates the paper's ADL evaluation tables and
// figures (Table II, Figures 6–10, the §V-E scanned-bytes measurement, and
// the §IV-C strategy ablation) on laptop-scale synthetic data.
//
// Usage:
//
//	adlbench [-events N] [-seed S] [-runs R] [-cutoff D] [-experiments list]
//
// Experiments: table2, fig6, fig7, fig8, fig9, fig10, scanned, ablation,
// or "all" (fig10 is the slowest; shrink -events or -powers for quick runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"jsonpark"
	"jsonpark/internal/adl"

	"jsonpark/internal/bench"
)

func main() {
	events := flag.Int("events", 20000, "events at scale factor 1")
	seed := flag.Int64("seed", 42, "generator seed")
	runs := flag.Int("runs", 3, "measured runs per data point")
	warmups := flag.Int("warmups", 1, "warmup runs per data point")
	cutoff := flag.Duration("cutoff", 15*time.Second, "per-run cutoff (paper: 10 minutes)")
	powers := flag.String("powers", "-7,-6,-5,-4,-3,-2,-1,0", "fig10 scale factors as powers of two")
	experiments := flag.String("experiments", "all", "comma-separated experiment list")
	jsonOut := flag.String("json", "", "also write machine-readable run results to this path (e.g. BENCH_ADL.json)")
	batchSize := flag.Int("batch-size", 0, "rows per vector batch (0 = engine default, 1024)")
	parallelism := flag.Int("parallelism", 0, "workers for parallel scans, aggregation, join build and sort (0 = NumCPU, 1 = sequential)")
	memLimit := flag.String("mem-limit", "", "pipeline-breaker memory budget per query, e.g. 64KiB or 512MiB (empty = unlimited; overflow spills to disk)")
	qlogPath := flag.String("qlog", "", "stream every data point as a structured JSON line to FILE as it is measured (- = stderr)")
	repeat := flag.Int("repeat", 0, "hot-query mode: run each query N times against a plan-cached engine vs an uncached one (runs only this experiment)")
	flag.Parse()

	var memBytes int64
	if *memLimit != "" {
		var err error
		memBytes, err = jsonpark.ParseByteSize(*memLimit)
		if err != nil {
			fatal(err)
		}
	}

	cfg := adl.DefaultConfig(os.Stdout)
	if *jsonOut != "" || *qlogPath != "" {
		cfg.Recorder = bench.NewRecorder("adlbench")
	}
	if *qlogPath != "" {
		l, closer, err := bench.OpenLogSink(*qlogPath)
		if err != nil {
			fatal(err)
		}
		defer closer()
		cfg.Recorder.SetSink(l)
	}
	cfg.Events = *events
	cfg.Seed = *seed
	cfg.Runs = *runs
	cfg.Warmups = *warmups
	cfg.Cutoff = *cutoff
	cfg.BatchSize = *batchSize
	cfg.Parallelism = *parallelism
	cfg.MemLimit = memBytes
	cfg.ScalePowers = nil
	for _, p := range strings.Split(*powers, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fatal(fmt.Errorf("bad -powers entry %q: %w", p, err))
		}
		cfg.ScalePowers = append(cfg.ScalePowers, v)
	}

	cfg.Repeat = *repeat

	all := map[string]func(adl.ReportConfig) error{
		"table2":   adl.ReportTable2,
		"fig6":     adl.ReportFig6,
		"fig7":     adl.ReportFig7,
		"fig8":     adl.ReportFig8,
		"fig9":     adl.ReportFig9,
		"fig10":    adl.ReportFig10,
		"scanned":  adl.ReportScanned,
		"ablation": adl.ReportAblation,
		"repeat":   adl.ReportRepeat,
	}
	order := []string{"table2", "fig6", "fig7", "fig8", "fig9", "scanned", "ablation", "fig10"}
	// -repeat N runs only the hot-query experiment; "repeat" in -experiments
	// adds it to a normal sweep with the default iteration count.
	if *repeat > 0 {
		*experiments = "repeat"
	}
	order = append(order, "repeat")

	want := map[string]bool{}
	for _, e := range strings.Split(*experiments, ",") {
		want[strings.TrimSpace(e)] = true
	}
	for _, name := range order {
		if name == "repeat" && !want["repeat"] {
			continue // opt-in only; "all" keeps its historical experiment set
		}
		if !want["all"] && !want[name] {
			continue
		}
		if err := all[name](cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	if *jsonOut != "" {
		if err := cfg.Recorder.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "adlbench: wrote %d records to %s\n", len(cfg.Recorder.Records()), *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adlbench:", err)
	os.Exit(1)
}
