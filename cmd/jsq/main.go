// Command jsq runs JSONiq queries against JSON-lines data, mirroring the
// paper's client workflow: the query is translated into one native SQL
// string and executed by the embedded columnar engine, or interpreted by
// the baseline runtime for comparison.
//
// Usage:
//
//	jsq -data events.jsonl -collection adl [-columns EVENT,MET,...] 'for $e in ...'
//	jsq -data events.jsonl -sql-only 'for $e in ...'      # print generated SQL
//	jsq -data events.jsonl -explain '...'                 # print engine plan
//	jsq -data events.jsonl -explain-analyze '...'         # run + per-operator stats
//	jsq -demo '...'                                       # tiny built-in dataset
//	echo 'for $e in ...' | jsq -data events.jsonl         # query from stdin
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"jsonpark"

	"jsonpark/internal/obsv/qlog"
)

func main() {
	data := flag.String("data", "", "JSON-lines input file (one object per line)")
	collection := flag.String("collection", "data", "collection name for the input")
	columns := flag.String("columns", "", "staged columns (default: union of top-level fields)")
	backend := flag.String("backend", "translate", "translate | interp")
	strategy := flag.String("strategy", "keep-flag", "nested-query strategy: keep-flag | join")
	sqlOnly := flag.Bool("sql-only", false, "print the generated SQL and exit")
	explain := flag.Bool("explain", false, "print the optimized engine plan and exit")
	explainAnalyze := flag.Bool("explain-analyze", false, "execute and print the plan annotated with per-operator rows, wall time and scan stats")
	metrics := flag.Bool("metrics", false, "print execution metrics")
	demo := flag.Bool("demo", false, "load a tiny built-in orders dataset")
	repl := flag.Bool("repl", false, "interactive mode: queries end with a ';' line")
	batchSize := flag.Int("batch-size", 0, "rows per vector batch (0 = engine default, 1024)")
	parallelism := flag.Int("parallelism", 0, "workers for parallel scans, aggregation, join build and sort (0 = NumCPU, 1 = sequential)")
	mergePartitions := flag.Int("merge-partitions", 0, "hash partitions of the parallel aggregate merge (0 = follow -parallelism)")
	memLimit := flag.String("mem-limit", "", "pipeline-breaker memory budget per query, e.g. 64KiB or 512MiB (empty = unlimited; overflow spills to disk)")
	timeout := flag.Duration("timeout", 0, "per-query execution time limit, e.g. 30s (0 = none)")
	planCheck := flag.Bool("plancheck", false, "enable the planck debug pass (plan cross-checks + per-batch validation)")
	qlogPath := flag.String("qlog", "", "append a structured query-log JSON line per query to FILE (- = stderr)")
	slowMS := flag.Int64("slow-query-ms", -1, "retain span tree + plan snapshot for queries slower than this many ms (0 = every query, negative = off)")
	traceOut := flag.String("trace-out", "", "append every finished trace as a JSON line to FILE")
	dataDir := flag.String("data-dir", "", "persist micro-partitions under DIR and reopen collections found there (empty = in-memory)")
	typedColumns := flag.Bool("typed-columns", true, "shred uniform scalar columns into typed arrays at partition seal (typed expression kernels)")
	planCacheSize := flag.Int("plan-cache-size", 0, "prepared-plan cache entries; repeated queries (e.g. in -repl) skip compilation (0 = engine default, negative = off)")
	flag.Parse()

	var memBytes int64
	if *memLimit != "" {
		var err error
		memBytes, err = jsonpark.ParseByteSize(*memLimit)
		if err != nil {
			fatal(err)
		}
	}

	openOpts := []jsonpark.OpenOption{
		jsonpark.WithBatchSize(*batchSize),
		jsonpark.WithParallelism(*parallelism),
		jsonpark.WithMergePartitions(*mergePartitions),
		jsonpark.WithMemLimit(memBytes),
		jsonpark.WithPlanCheck(*planCheck),
		jsonpark.WithSlowQueryMillis(*slowMS),
		jsonpark.WithDataDir(*dataDir),
		jsonpark.WithTypedColumns(*typedColumns),
		jsonpark.WithPlanCacheSize(*planCacheSize),
	}
	if *traceOut != "" {
		f, err := appendFile(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		openOpts = append(openOpts, jsonpark.WithTraceExport(f))
	}
	var qlogger *qlog.Logger
	if *qlogPath == "-" {
		qlogger = qlog.New(os.Stderr)
	} else if *qlogPath != "" {
		f, err := appendFile(*qlogPath)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		qlogger = qlog.New(f)
	}

	w := jsonpark.Open(openOpts...)
	switch {
	case *demo:
		loadDemo(w)
	case *data != "":
		if err := loadJSONL(w, *collection, *data, *columns); err != nil {
			fatal(err)
		}
	case *dataDir != "":
		// Persistent warehouse with no fresh input: query what's on disk.
	default:
		fatal(fmt.Errorf("provide -data FILE, -demo, or -data-dir DIR"))
	}
	if *dataDir != "" {
		// Seal freshly loaded rows so they reach disk before any querying.
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}

	strat := jsonpark.StrategyKeepFlag
	switch *strategy {
	case "join":
		strat = jsonpark.StrategyJoin
	case "auto":
		strat = jsonpark.StrategyAuto
	case "keep-flag":
	default:
		fatal(fmt.Errorf("unknown -strategy %q", *strategy))
	}

	if *repl {
		runREPL(w, qlogger, strat, *timeout)
		return
	}

	// One-shot execution: Ctrl-C (and the optional -timeout) cancels the
	// running query; workers exit promptly and the error says which tripped.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	if *timeout > 0 {
		var cancelTo context.CancelFunc
		ctx, cancelTo = context.WithTimeout(ctx, *timeout)
		defer cancelTo()
	}

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		query = string(raw)
	}
	if strings.TrimSpace(query) == "" {
		fatal(fmt.Errorf("no query given (argument or stdin)"))
	}

	if *backend == "interp" {
		items, err := w.QueryInterpreted(query)
		if err != nil {
			fatal(err)
		}
		for _, it := range items {
			fmt.Println(it.JSON())
		}
		return
	}
	if *backend != "translate" {
		fatal(fmt.Errorf("unknown -backend %q", *backend))
	}

	sql, err := w.Translate(query, jsonpark.WithStrategy(strat))
	if err != nil {
		fatal(err)
	}
	if *sqlOnly {
		fmt.Println(sql)
		return
	}
	if *explain {
		plan, err := w.ExplainSQL(sql)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	if *explainAnalyze {
		rep, err := w.QueryTraced(query, jsonpark.WithStrategy(strat), jsonpark.WithAnalyze(), jsonpark.WithContext(ctx))
		qlogger.LogQuery(rep.QueryLogRecord(logStatus(err), err))
		if err != nil {
			fatal(describeCancel(err, *timeout))
		}
		m := rep.Result.Metrics
		fmt.Printf("-- trace %s strategy=%s rows=%d compile=%s exec=%s\n",
			rep.TraceID, rep.Strategy, m.RowsReturned, m.CompileTime, m.ExecTime)
		fmt.Print(rep.RenderAnalyze())
		fmt.Println("-- stages")
		fmt.Print(rep.Trace.Root.Render())
		return
	}
	rep, err := w.QueryTraced(query, jsonpark.WithStrategy(strat), jsonpark.WithContext(ctx))
	qlogger.LogQuery(rep.QueryLogRecord(logStatus(err), err))
	if err != nil {
		fatal(describeCancel(err, *timeout))
	}
	res := rep.Result
	for _, row := range res.Rows {
		fmt.Println(row[0].JSON())
	}
	if *metrics {
		m := res.Metrics
		fmt.Fprintf(os.Stderr, "compile=%s exec=%s scanned=%d bytes partitions=%d/%d pruned rows=%d\n",
			m.CompileTime, m.ExecTime, m.BytesScanned,
			m.PartitionsPruned, m.PartitionsTotal, m.RowsReturned)
	}
}

// describeCancel rewrites context-cancellation errors into operator-facing
// messages; other errors pass through.
func describeCancel(err error, timeout time.Duration) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("query exceeded -timeout %s", timeout)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("query interrupted")
	}
	return err
}

// runREPL reads queries interactively — the REPL client of the paper's
// §III-A1 interface list. A query is submitted with a line containing only
// ";"; special commands: ".sql" toggles SQL echo, ".quit" exits. Ctrl-C
// during execution aborts the running query, not the REPL: the signal
// context lives only for the duration of one w.Query call.
func runREPL(w *jsonpark.Warehouse, qlogger *qlog.Logger, strat jsonpark.Strategy, timeout time.Duration) {
	fmt.Println("jsonpark REPL — end queries with a ';' line, .sql toggles SQL echo, .quit exits (Ctrl-C aborts a running query)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	showSQL := false
	prompt := func() { fmt.Print("jsq> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case ".quit", ".exit":
			return
		case ".sql":
			showSQL = !showSQL
			fmt.Printf("sql echo: %v\n", showSQL)
			prompt()
			continue
		case ";":
			query := buf.String()
			buf.Reset()
			if strings.TrimSpace(query) == "" {
				prompt()
				continue
			}
			if showSQL {
				if sql, err := w.Translate(query, jsonpark.WithStrategy(strat)); err == nil {
					fmt.Println("--", sql)
				}
			}
			res, err := replQuery(w, qlogger, query, strat, timeout)
			if err != nil {
				fmt.Println("error:", describeCancel(err, timeout))
				prompt()
				continue
			}
			for _, row := range res.Rows {
				fmt.Println(row[0].JSON())
			}
			fmt.Printf("(%d rows, compile %v, exec %v)\n",
				len(res.Rows), res.Metrics.CompileTime, res.Metrics.ExecTime)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	// A read error on stdin (as opposed to clean EOF) should not look like a
	// normal .quit.
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "jsq: reading input:", err)
	}
}

// replQuery executes one REPL query under a per-query signal context, so an
// interrupt cancels the query and control returns to the prompt.
func replQuery(w *jsonpark.Warehouse, qlogger *qlog.Logger, query string, strat jsonpark.Strategy, timeout time.Duration) (*jsonpark.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	rep, err := w.QueryTraced(query, jsonpark.WithStrategy(strat), jsonpark.WithContext(ctx))
	qlogger.LogQuery(rep.QueryLogRecord(logStatus(err), err))
	if err != nil {
		return nil, err
	}
	return rep.Result, nil
}

// logStatus maps an execution error to the query-log status vocabulary.
func logStatus(err error) string {
	switch {
	case err == nil:
		return qlog.StatusOK
	case errors.Is(err, context.DeadlineExceeded):
		return qlog.StatusTimeout
	case errors.Is(err, context.Canceled):
		return qlog.StatusCancelled
	}
	return qlog.StatusError
}

// appendFile opens (creating if needed) a log sink for append-only writes.
func appendFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// loadJSONL stages a JSON-lines file. Without -columns, a first pass
// collects the union of top-level field names (schema inference on load,
// keeping the engine itself schema-oblivious).
func loadJSONL(w *jsonpark.Warehouse, collection, path, columns string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []jsonpark.Value
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := jsonpark.ParseJSON(line)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		docs = append(docs, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	var cols []string
	if columns != "" {
		cols = strings.Split(columns, ",")
	} else {
		seen := map[string]bool{}
		for _, d := range docs {
			for _, k := range d.AsObject().Keys() {
				if !seen[k] {
					seen[k] = true
					cols = append(cols, k)
				}
			}
		}
		sort.Strings(cols)
	}
	if err := w.CreateCollection(collection, cols); err != nil {
		return err
	}
	for _, d := range docs {
		if err := w.LoadObject(collection, d); err != nil {
			return err
		}
	}
	return nil
}

func loadDemo(w *jsonpark.Warehouse) {
	if err := w.CreateCollection("orders", []string{"id", "customer", "items"}); err != nil {
		fatal(err)
	}
	for _, d := range []string{
		`{"id": 1, "customer": "ada", "items": [{"sku": "apple", "qty": 2, "price": 1.5}]}`,
		`{"id": 2, "customer": "bob", "items": []}`,
		`{"id": 3, "customer": "ada", "items": [{"sku": "plum", "qty": 5, "price": 0.5}, {"sku": "fig", "qty": 1, "price": 3.0}]}`,
	} {
		if err := w.LoadJSON("orders", d); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsq:", err)
	os.Exit(1)
}
