// Command jsqlint runs jsonpark's static-analysis suite (internal/lint)
// over the module. It is the multichecker behind `make lint` and the CI
// lint gate: every analyzer checks one executor invariant that the type
// system cannot express — kernel output aliasing, operator Close lifecycle,
// span lifecycle, selection-vector access discipline, lock scope across
// NextBatch, and discarded load-bearing errors.
//
// Usage:
//
//	jsqlint [-checks kernelalias,execclose,...] [packages]
//
// With no packages, ./... is linted. Exit status is 1 when any finding
// survives suppression, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"jsonpark/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("jsqlint", flag.ContinueOnError)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: jsqlint [-checks a,b,...] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "jsqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
