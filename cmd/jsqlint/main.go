// Command jsqlint runs jsonpark's static-analysis suite (internal/lint)
// over the module. It is the multichecker behind `make lint` and the CI
// lint gate: every analyzer checks one executor invariant that the type
// system cannot express — kernel output aliasing, operator Close lifecycle,
// span lifecycle, selection-vector access discipline, lock scope across
// NextBatch, discarded load-bearing errors, cancellation polling in
// batch-absorbing loops, memory-governance charging, TypedCol view escapes,
// spill-run lifecycles, and raw null-bitmap access.
//
// Usage:
//
//	jsqlint [-checks kernelalias,execclose,...] [-format text|json|sarif] [-stats] [packages]
//
// With no packages, ./... is linted. -format json emits one object per
// finding; -format sarif emits a SARIF 2.1.0 log for code-scanning upload.
// -stats prints per-analyzer wall time and finding counts to stderr. Exit
// status is 1 when any finding survives suppression, 2 on usage or load
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"jsonpark/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("jsqlint", flag.ContinueOnError)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	stats := fs.Bool("stats", false, "print per-analyzer wall time and finding counts to stderr")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: jsqlint [-checks a,b,...] [-format text|json|sarif] [-stats] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "jsqlint: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags, perAnalyzer, err := lint.RunWithStats(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *format {
	case "text":
		for _, d := range diags {
			fmt.Println(d)
		}
	case "json":
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case "sarif":
		if err := writeSARIF(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *stats {
		for _, s := range perAnalyzer {
			fmt.Fprintf(os.Stderr, "jsqlint: %-12s %4d finding(s) %12s\n", s.Name, s.Findings, s.Wall.Round(time.Millisecond/10))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "jsqlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath rewrites an absolute diagnostic path relative to the working
// directory with forward slashes — the shape code-scanning uploads expect.
func relPath(fn string) string {
	wd, err := os.Getwd()
	if err != nil {
		return fn
	}
	rel, err := filepath.Rel(wd, fn)
	if err != nil || strings.HasPrefix(rel, "..") {
		return fn
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is one -format=json record.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 document: one run, one rule per analyzer, one result
// per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w *os.File, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "jsqlint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
