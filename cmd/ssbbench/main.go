// Command ssbbench regenerates the paper's SSB evaluation (Figure 11a/11b):
// total time of the thirteen relational queries expressed in JSONiq versus
// the handwritten SQL references, on laptop-scale synthetic data.
//
// Usage:
//
//	ssbbench [-sf F] [-sfs list] [-seed S] [-runs R] [-experiments fig11a,fig11b]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jsonpark"

	"jsonpark/internal/bench"
	"jsonpark/internal/ssb"
)

func main() {
	sf := flag.Float64("sf", 4, "scale factor for fig11a (SF1 = 6000 lineorders)")
	sfs := flag.String("sfs", "0.5,1,2,4", "scale factors for fig11b")
	seed := flag.Int64("seed", 7, "generator seed")
	runs := flag.Int("runs", 3, "measured runs per data point")
	warmups := flag.Int("warmups", 1, "warmup runs per data point")
	experiments := flag.String("experiments", "all", "fig11a, fig11b or all")
	jsonOut := flag.String("json", "", "also write machine-readable run results to this path (e.g. BENCH_SSB.json)")
	batchSize := flag.Int("batch-size", 0, "rows per vector batch (0 = engine default, 1024)")
	parallelism := flag.Int("parallelism", 0, "workers for parallel scans, aggregation, join build and sort (0 = NumCPU, 1 = sequential)")
	memLimit := flag.String("mem-limit", "", "pipeline-breaker memory budget per query, e.g. 64KiB or 512MiB (empty = unlimited; overflow spills to disk)")
	qlogPath := flag.String("qlog", "", "stream every data point as a structured JSON line to FILE as it is measured (- = stderr)")
	repeat := flag.Int("repeat", 0, "hot-query mode: run each Fig 11b query N times against a plan-cached engine vs an uncached one (runs only this experiment)")
	flag.Parse()

	var memBytes int64
	if *memLimit != "" {
		var err error
		memBytes, err = jsonpark.ParseByteSize(*memLimit)
		if err != nil {
			fatal(err)
		}
	}

	cfg := ssb.DefaultConfig(os.Stdout)
	if *jsonOut != "" || *qlogPath != "" {
		cfg.Recorder = bench.NewRecorder("ssbbench")
	}
	if *qlogPath != "" {
		l, closer, err := bench.OpenLogSink(*qlogPath)
		if err != nil {
			fatal(err)
		}
		defer closer()
		cfg.Recorder.SetSink(l)
	}
	cfg.ScaleFactor = *sf
	cfg.Seed = *seed
	cfg.Runs = *runs
	cfg.Warmups = *warmups
	cfg.BatchSize = *batchSize
	cfg.Parallelism = *parallelism
	cfg.MemLimit = memBytes
	cfg.ScaleFactors = nil
	for _, s := range strings.Split(*sfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -sfs entry %q: %w", s, err))
		}
		cfg.ScaleFactors = append(cfg.ScaleFactors, v)
	}

	cfg.Repeat = *repeat
	// -repeat N runs only the hot-query experiment.
	if *repeat > 0 {
		*experiments = "repeat"
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*experiments, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["repeat"] {
		if err := ssb.ReportRepeat(cfg); err != nil {
			fatal(err)
		}
	}
	if want["all"] || want["fig11a"] {
		if err := ssb.ReportFig11a(cfg); err != nil {
			fatal(err)
		}
	}
	if want["all"] || want["fig11b"] {
		if err := ssb.ReportFig11b(cfg); err != nil {
			fatal(err)
		}
	}
	if *jsonOut != "" {
		if err := cfg.Recorder.WriteFile(*jsonOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ssbbench: wrote %d records to %s\n", len(cfg.Recorder.Records()), *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssbbench:", err)
	os.Exit(1)
}
