// Command datagen emits the synthetic benchmark datasets as JSON lines, for
// inspection or for loading through jsq — or writes them straight into a
// persistent warehouse directory with -data-dir.
//
// Usage:
//
//	datagen -kind adl -n 1000 -seed 42 > events.jsonl
//	datagen -kind ssb -table lineorder -sf 0.1 > lineorder.jsonl
//	datagen -kind adl -n 100000 -data-dir ./wh   # micro-partitions on disk
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"jsonpark"
	"jsonpark/internal/hepdata"
	"jsonpark/internal/ssb"
	"jsonpark/internal/variant"
)

func main() {
	kind := flag.String("kind", "adl", "adl | ssb")
	n := flag.Int("n", 1000, "number of ADL events")
	sf := flag.Float64("sf", 0.1, "SSB scale factor")
	table := flag.String("table", "lineorder", "SSB table: lineorder|customer|supplier|part|date")
	seed := flag.Int64("seed", 42, "generator seed")
	dataDir := flag.String("data-dir", "", "write micro-partitions into a warehouse directory instead of JSON lines on stdout")
	collection := flag.String("collection", "", "collection name for -data-dir (default: \"events\" for adl, the -table name for ssb)")
	typedColumns := flag.Bool("typed-columns", true, "shred uniform scalar columns into typed arrays (only with -data-dir)")
	flag.Parse()

	var docs []variant.Value
	name := *collection
	switch *kind {
	case "adl":
		docs = hepdata.Events(*seed, *n)
		if name == "" {
			name = "events"
		}
	case "ssb":
		tabs := ssb.Generate(*seed, ssb.SizesForScaleFactor(*sf))
		switch *table {
		case "lineorder":
			docs = tabs.Lineorder
		case "customer":
			docs = tabs.Customer
		case "supplier":
			docs = tabs.Supplier
		case "part":
			docs = tabs.Part
		case "date":
			docs = tabs.Date
		default:
			fatal(fmt.Errorf("unknown -table %q", *table))
		}
		if name == "" {
			name = *table
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}

	if *dataDir != "" {
		if err := writeWarehouse(*dataDir, name, docs, *typedColumns); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d rows to %s/%s\n", len(docs), *dataDir, name)
		return
	}

	out := bufio.NewWriter(os.Stdout)
	for _, d := range docs {
		fmt.Fprintln(out, d.JSON())
	}
	// A short write to a full disk or closed pipe surfaces here, not as a
	// silently truncated dataset.
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

// writeWarehouse loads the documents into a persistent warehouse at dir,
// staging one column per top-level field (union across documents, in
// first-seen order), and flushes so every row reaches disk.
func writeWarehouse(dir, name string, docs []variant.Value, typed bool) error {
	w := jsonpark.Open(jsonpark.WithDataDir(dir), jsonpark.WithTypedColumns(typed))
	var cols []string
	seen := map[string]bool{}
	for _, d := range docs {
		for _, k := range d.AsObject().Keys() {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	if err := w.CreateCollection(name, cols); err != nil {
		return err
	}
	for _, d := range docs {
		if err := w.LoadObject(name, d); err != nil {
			return err
		}
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
