// Command datagen emits the synthetic benchmark datasets as JSON lines, for
// inspection or for loading through jsq.
//
// Usage:
//
//	datagen -kind adl -n 1000 -seed 42 > events.jsonl
//	datagen -kind ssb -table lineorder -sf 0.1 > lineorder.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"jsonpark/internal/hepdata"
	"jsonpark/internal/ssb"
	"jsonpark/internal/variant"
)

func main() {
	kind := flag.String("kind", "adl", "adl | ssb")
	n := flag.Int("n", 1000, "number of ADL events")
	sf := flag.Float64("sf", 0.1, "SSB scale factor")
	table := flag.String("table", "lineorder", "SSB table: lineorder|customer|supplier|part|date")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)

	var docs []variant.Value
	switch *kind {
	case "adl":
		docs = hepdata.Events(*seed, *n)
	case "ssb":
		tabs := ssb.Generate(*seed, ssb.SizesForScaleFactor(*sf))
		switch *table {
		case "lineorder":
			docs = tabs.Lineorder
		case "customer":
			docs = tabs.Customer
		case "supplier":
			docs = tabs.Supplier
		case "part":
			docs = tabs.Part
		case "date":
			docs = tabs.Date
		default:
			fatal(fmt.Errorf("unknown -table %q", *table))
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
	for _, d := range docs {
		fmt.Fprintln(out, d.JSON())
	}
	// A short write to a full disk or closed pipe surfaces here, not as a
	// silently truncated dataset.
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
