// Command jsqd serves a warehouse over HTTP — the REST interface of the
// paper's system architecture (§III-A1).
//
// Usage:
//
//	jsqd [-addr :8080] [-data events.jsonl -collection adl]
//	     [-qlog query.log] [-slow-query-ms 250] [-trace-out traces.jsonl]
//
// Then:
//
//	curl -s localhost:8080/query -d '{"query": "for $e in collection(\"adl\") return $e.EVENT"}'
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"jsonpark"

	"jsonpark/internal/obsv/qlog"
	"jsonpark/internal/server"
)

// shutdownGrace bounds how long in-flight requests may run after a signal.
const shutdownGrace = 10 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "optional JSON-lines file to preload")
	collection := flag.String("collection", "data", "collection name for -data")
	queryTimeout := flag.Duration("query-timeout", 0, "per-request query execution limit; exceeding it returns a structured 504 (0 = none)")
	memLimit := flag.String("mem-limit", "", "pipeline-breaker memory budget per query, e.g. 512MiB (empty = unlimited; overflow spills to disk)")
	qlogPath := flag.String("qlog", "", "append the structured query log (one JSON line per query) to FILE instead of stderr")
	slowMS := flag.Int64("slow-query-ms", -1, "capture queries slower than this many ms in /debug/slow, logged at warn (0 = every query, negative = off)")
	traceOut := flag.String("trace-out", "", "append every finished trace as a JSON line to FILE")
	dataDir := flag.String("data-dir", "", "persist micro-partitions under DIR and reopen collections found there (empty = in-memory)")
	typedColumns := flag.Bool("typed-columns", true, "shred uniform scalar columns into typed arrays at partition seal (typed expression kernels)")
	planCacheSize := flag.Int("plan-cache-size", 256, "prepared-plan cache entries; repeated queries skip compilation (0 = engine default, negative = off)")
	resultCacheSize := flag.Int("result-cache-size", 256, "partition-versioned result cache entries; repeated queries over unchanged collections skip execution (0 or negative = off)")
	resultCacheBytes := flag.String("result-cache-bytes", "64MiB", "result cache resident-row byte budget, e.g. 64MiB")
	var views []string
	flag.Func("view", "register a materialized view as NAME=JSONIQ_QUERY at startup (repeatable; refreshed incrementally on /views/query)", func(s string) error {
		if !strings.Contains(s, "=") {
			return fmt.Errorf("want NAME=QUERY, got %q", s)
		}
		views = append(views, s)
		return nil
	})
	globalMemLimit := flag.String("global-mem-limit", "", "shared memory pool across all concurrent queries, e.g. 1GiB (empty = no pool; overflow spills to disk)")
	tenantSlots := flag.Int("tenant-slots", 0, "max concurrently admitted queries per tenant (X-Tenant header; 0 = unlimited)")
	admissionTimeout := flag.Duration("admission-timeout", time.Second, "how long a request may queue for admission before being shed with 429")
	flag.Parse()

	var memBytes int64
	if *memLimit != "" {
		var err error
		memBytes, err = jsonpark.ParseByteSize(*memLimit)
		if err != nil {
			log.Fatal(err)
		}
	}
	var globalMemBytes int64
	if *globalMemLimit != "" {
		var err error
		globalMemBytes, err = jsonpark.ParseByteSize(*globalMemLimit)
		if err != nil {
			log.Fatal(err)
		}
	}
	var resultCacheByteBudget int64
	if *resultCacheBytes != "" {
		var err error
		resultCacheByteBudget, err = jsonpark.ParseByteSize(*resultCacheBytes)
		if err != nil {
			log.Fatal(err)
		}
	}

	opts := []jsonpark.OpenOption{
		jsonpark.WithMemLimit(memBytes),
		jsonpark.WithSlowQueryMillis(*slowMS),
		jsonpark.WithDataDir(*dataDir),
		jsonpark.WithTypedColumns(*typedColumns),
		jsonpark.WithPlanCacheSize(*planCacheSize),
		jsonpark.WithResultCacheSize(*resultCacheSize),
		jsonpark.WithResultCacheBytes(resultCacheByteBudget),
	}
	if globalMemBytes > 0 || *tenantSlots > 0 {
		opts = append(opts, jsonpark.WithGovernor(jsonpark.NewGovernor(jsonpark.GovernorConfig{
			MemLimit:     globalMemBytes,
			TenantSlots:  *tenantSlots,
			QueueTimeout: *admissionTimeout,
		})))
	}
	if *traceOut != "" {
		f, err := appendFile(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		opts = append(opts, jsonpark.WithTraceExport(f))
	}
	w := jsonpark.Open(opts...)
	if *data != "" {
		if err := preload(w, *collection, *data); err != nil {
			log.Fatal(err)
		}
	}
	if *dataDir != "" {
		// Seal preloaded rows to disk before serving.
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	for _, v := range views {
		name, query, _ := strings.Cut(v, "=")
		if err := w.CreateView(name, query); err != nil {
			log.Fatalf("-view %s: %v", name, err)
		}
		log.Printf("registered materialized view %q", name)
	}

	sopts := []server.Option{server.WithQueryTimeout(*queryTimeout)}
	if *qlogPath != "" {
		f, err := appendFile(*qlogPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		sopts = append(sopts, server.WithQueryLog(qlog.New(f)))
	}
	srv := &http.Server{Addr: *addr, Handler: server.New(w, sopts...)}
	errc := make(chan error, 1)
	go func() {
		log.Printf("jsqd listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("jsqd shutting down (grace %s)", shutdownGrace)
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("jsqd shutdown: %v", err)
	}
	if *dataDir != "" {
		// Seal rows loaded over HTTP so they survive the restart.
		if err := w.Flush(); err != nil {
			log.Printf("jsqd flush: %v", err)
		}
	}
	logFinalMetrics(w)
}

// appendFile opens (creating if needed) a log sink for append-only writes.
func appendFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// logFinalMetrics writes the lifetime metrics snapshot so a scrape gap at
// shutdown loses nothing.
func logFinalMetrics(w *jsonpark.Warehouse) {
	var sb strings.Builder
	w.Observer().Registry.Expose(&sb)
	log.Printf("jsqd final metrics snapshot:\n%s", sb.String())
}

func preload(w *jsonpark.Warehouse, collection, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []jsonpark.Value
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := jsonpark.ParseJSON(line)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		docs = append(docs, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	seen := map[string]bool{}
	var cols []string
	for _, d := range docs {
		for _, k := range d.AsObject().Keys() {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	if err := w.CreateCollection(collection, cols); err != nil {
		return err
	}
	for _, d := range docs {
		if err := w.LoadObject(collection, d); err != nil {
			return err
		}
	}
	log.Printf("loaded %d documents into %q (columns: %v)", len(docs), collection, cols)
	return nil
}
