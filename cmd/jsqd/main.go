// Command jsqd serves a warehouse over HTTP — the REST interface of the
// paper's system architecture (§III-A1).
//
// Usage:
//
//	jsqd [-addr :8080] [-data events.jsonl -collection adl]
//
// Then:
//
//	curl -s localhost:8080/query -d '{"query": "for $e in collection(\"adl\") return $e.EVENT"}'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"

	"jsonpark"

	"jsonpark/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "optional JSON-lines file to preload")
	collection := flag.String("collection", "data", "collection name for -data")
	flag.Parse()

	w := jsonpark.Open()
	if *data != "" {
		if err := preload(w, *collection, *data); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("jsqd listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(w)))
}

func preload(w *jsonpark.Warehouse, collection, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var docs []jsonpark.Value
	sc := bufio.NewScanner(strings.NewReader(string(raw)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := jsonpark.ParseJSON(line)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		docs = append(docs, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	seen := map[string]bool{}
	var cols []string
	for _, d := range docs {
		for _, k := range d.AsObject().Keys() {
			if !seen[k] {
				seen[k] = true
				cols = append(cols, k)
			}
		}
	}
	sort.Strings(cols)
	if err := w.CreateCollection(collection, cols); err != nil {
		return err
	}
	for _, d := range docs {
		if err := w.LoadObject(collection, d); err != nil {
			return err
		}
	}
	log.Printf("loaded %d documents into %q (columns: %v)", len(docs), collection, cols)
	return nil
}
