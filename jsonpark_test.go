package jsonpark

import (
	"strings"
	"testing"
)

func exampleWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := Open()
	if err := w.CreateCollection("orders", []string{"id", "customer", "items"}); err != nil {
		t.Fatal(err)
	}
	docs := []string{
		`{"id": 1, "customer": "ada", "items": [{"sku": "apple", "qty": 2, "price": 1.5}, {"sku": "pear", "qty": 1, "price": 2.0}]}`,
		`{"id": 2, "customer": "bob", "items": []}`,
		`{"id": 3, "customer": "ada", "items": [{"sku": "plum", "qty": 5, "price": 0.5}]}`,
	}
	for _, d := range docs {
		if err := w.LoadJSON("orders", d); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWarehouseQuickstartFlow(t *testing.T) {
	w := exampleWarehouse(t)
	items, err := w.QueryItems(`
		for $o in collection("orders")
		for $i in $o.items[]
		where $i.qty gt 1
		return {"id": $o.id, "sku": $i.sku}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
}

func TestWarehouseNestedTotalPerOrder(t *testing.T) {
	w := exampleWarehouse(t)
	for _, strat := range []Strategy{StrategyKeepFlag, StrategyJoin} {
		items, err := w.QueryItems(`
			for $o in collection("orders")
			let $total := sum(for $i in $o.items[] return $i.qty * $i.price)
			order by $o.id
			return {"id": $o.id, "total": $total}`, WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 3 {
			t.Fatalf("rows = %v", items)
		}
		// Order 2 has no items: it must survive with total 0 (§IV-C).
		if got := items[1].Field("total").AsFloat(); got != 0 {
			t.Errorf("strategy %v: order 2 total = %v", strat, got)
		}
		if got := items[0].Field("total").AsFloat(); got != 5.0 {
			t.Errorf("strategy %v: order 1 total = %v", strat, got)
		}
	}
}

func TestWarehouseTranslateProducesSingleSQL(t *testing.T) {
	w := exampleWarehouse(t)
	sql, err := w.Translate(`for $o in collection("orders") return $o.id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sql, "SELECT") {
		t.Errorf("sql = %s", sql)
	}
	// The engine accepts the exact text.
	if _, err := w.SQL(sql); err != nil {
		t.Fatalf("engine rejected translation: %v", err)
	}
}

func TestWarehouseInterpretedMatchesTranslated(t *testing.T) {
	w := exampleWarehouse(t)
	src := `for $o in collection("orders")
		group by $c := $o.customer
		order by $c
		return {"customer": $c, "orders": count($o)}`
	translated, err := w.QueryItems(src)
	if err != nil {
		t.Fatal(err)
	}
	interpreted, err := w.QueryInterpreted(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(translated) != len(interpreted) {
		t.Fatalf("row count mismatch: %d vs %d", len(translated), len(interpreted))
	}
	for i := range translated {
		if translated[i].HashKey() != interpreted[i].HashKey() {
			t.Errorf("row %d: %v vs %v", i, translated[i], interpreted[i])
		}
	}
}

func TestWarehouseMetricsExposed(t *testing.T) {
	w := exampleWarehouse(t)
	res, err := w.Query(`for $o in collection("orders") return $o.id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CompileTime <= 0 || res.Metrics.BytesScanned <= 0 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
}

func TestWarehouseErrors(t *testing.T) {
	w := exampleWarehouse(t)
	if err := w.CreateCollection("orders", []string{"x"}); err == nil {
		t.Error("duplicate collection should fail")
	}
	if err := w.LoadJSON("orders", `{not json`); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := w.LoadJSON("missing", `{}`); err == nil {
		t.Error("unknown collection should fail")
	}
	if _, err := w.Query(`for $x in`); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := w.Query(`for $o in collection("nope") return $o`); err == nil {
		t.Error("unknown collection in query should surface")
	}
}

func TestWarehouseExplain(t *testing.T) {
	w := exampleWarehouse(t)
	sql, err := w.Translate(`for $o in collection("orders") where $o.id gt 1 return $o.id`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.ExplainSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan orders") {
		t.Errorf("plan = %s", plan)
	}
}
